// Bit-identity of the popcount engine against the LUT engine for the
// proposed multiplier. The Sec. 2.5 theorem says splitting a product's k
// enable cycles into b-bit columns of popcounts is exact for every b — so
// the packed-stream datapath must reproduce LutEngine's products, MacStats,
// saturation order and k-histograms bit-for-bit at every bit-parallel
// degree, dense or zero-skip, serial or threaded. Lives in the `parallel`
// binary so TSan covers the threaded path and ASan/UBSan the SIMD gathers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/scmac.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/inference_session.hpp"
#include "nn/mac_engine.hpp"
#include "nn/network.hpp"
#include "nn/popcount_engine.hpp"

namespace scnn {
namespace {

using nn::EngineConfig;
using nn::EngineKind;
using nn::MacBackend;
using nn::MacStats;
using nn::PopcountEngine;
using nn::Sparsity;

std::vector<std::int32_t> random_codes(std::size_t count, int n_bits,
                                       std::uint64_t seed, int density = 100) {
  const std::int32_t half = 1 << (n_bits - 1);
  std::vector<std::int32_t> codes(count);
  common::SplitMix64 rng(seed);
  for (auto& c : codes) {
    c = static_cast<std::int32_t>(rng.next_below(2u * static_cast<unsigned>(half))) -
        half;
    if (static_cast<int>(rng.next_below(100)) >= density) c = 0;
  }
  return codes;
}

TEST(Popcount, BitParallelDegreeValidation) {
  for (const int n : {2, 4, 8}) {
    const int half = 1 << (n - 1);
    for (int b = 1; b <= 128; ++b) {
      const bool pow2 = (b & (b - 1)) == 0;
      EXPECT_EQ(nn::popcount_bit_parallel_ok(n, b),
                pow2 && b <= std::min(64, half))
          << "n=" << n << " b=" << b;
    }
  }
  EXPECT_NO_THROW(PopcountEngine(8, 2, 16));
  EXPECT_THROW(PopcountEngine(8, 2, 3), std::invalid_argument);
  EXPECT_THROW(PopcountEngine(4, 2, 16), std::invalid_argument);  // > half
  EXPECT_THROW(PopcountEngine(8, 2, 0), std::invalid_argument);
}

TEST(Popcount, ProductMatchesProposedMultiplierExhaustivelyForEveryB) {
  for (const int n : {4, 6, 8}) {
    const std::int32_t half = 1 << (n - 1);
    for (int b = 1; b <= std::min(64, static_cast<int>(half)); b *= 2) {
      const PopcountEngine eng(n, 2, b);
      for (std::int32_t qw = -half; qw < half; ++qw)
        for (std::int32_t qx = -half; qx < half; ++qx)
          ASSERT_EQ(eng.product(qx, qw), core::multiply_signed(n, qx, qw))
              << "n=" << n << " b=" << b << " qw=" << qw << " qx=" << qx;
    }
  }
}

TEST(Popcount, EngineIdenticalToLutEngineAcrossBAndDensity) {
  for (const int n : {4, 8}) {
    // A = 0 makes saturation common at N = 4 — the clamp-order contract is
    // only visible when clamps actually fire.
    for (const int a : {0, 2}) {
      const auto ref_engine = nn::make_engine({.kind = EngineKind::kProposed,
                                               .n_bits = n,
                                               .accum_bits = a,
                                               .backend = MacBackend::kScalar});
      const std::size_t d = 27, tile = 19;
      for (const int density : {0, 50, 100}) {
        const auto w = random_codes(d, n, 300 + static_cast<std::uint64_t>(n) +
                                              density + a, density);
        const auto patches = random_codes(d * tile, n, 301 + density);

        std::vector<std::int64_t> ref(tile);
        MacStats ref_stats;
        ref_stats.detail = true;
        ref_engine->mac_rows(nn::WeightCodeView(w), patches, ref, ref_stats);

        for (const int b : {1, 2, 8, (1 << (n - 1)) < 16 ? 4 : 16}) {
          const PopcountEngine eng(n, a, b, Sparsity::kDense);
          const std::string label = "n=" + std::to_string(n) + " a=" +
                                    std::to_string(a) + " b=" + std::to_string(b) +
                                    " density=" + std::to_string(density) + "%";
          std::vector<std::int64_t> out(tile, -1);
          MacStats stats;
          stats.detail = true;
          eng.mac_rows(nn::WeightCodeView(w), patches, out, stats);
          EXPECT_EQ(out, ref) << label;
          EXPECT_EQ(stats, ref_stats) << label;

          // Serial mac() agrees too (and with its own per-element stats).
          for (std::size_t t = 0; t < tile; ++t)
            ASSERT_EQ(eng.mac(w, std::span(patches).subspan(t * d, d)), ref[t])
                << label << " t=" << t;
        }
      }
    }
  }
}

TEST(Popcount, ZeroSkipPackedRowsBitIdenticalToDense) {
  const int n = 8;
  const std::size_t d = 27, tile = 33;
  const auto w = random_codes(d, n, 55, /*density=*/30);
  const auto patches = random_codes(d * tile, n, 56);
  const nn::PackedRowCodes packed =
      nn::PackedRowCodes::build(w, /*rows=*/1, static_cast<int>(d));

  const PopcountEngine dense(n, 2, 16, Sparsity::kDense);
  const PopcountEngine skip(n, 2, 16, Sparsity::kZeroSkip);
  EXPECT_FALSE(dense.zero_skip());
  EXPECT_TRUE(skip.zero_skip());

  std::vector<std::int64_t> ref(tile), out(tile);
  MacStats ref_stats, stats;
  ref_stats.detail = stats.detail = true;
  dense.mac_rows(nn::WeightCodeView(w), patches, ref, ref_stats);
  skip.mac_rows(nn::WeightCodeView::packed_row(w, packed, 0), patches, out, stats);

  EXPECT_EQ(out, ref);
  // Everything but the skip telemetry matches; the skipped products are
  // exactly the zero codes of the row.
  EXPECT_GT(stats.skipped_products, 0u);
  MacStats cmp = stats;
  cmp.skipped_products = ref_stats.skipped_products;
  EXPECT_EQ(cmp, ref_stats);
}

TEST(Popcount, MakeEngineRoutesAndValidatesKPopcount) {
  const auto eng = nn::make_engine({.kind = EngineKind::kProposed,
                                    .n_bits = 8,
                                    .bit_parallel = 16,
                                    .backend = MacBackend::kPopcount});
  EXPECT_EQ(eng->name(), "proposed");
  EXPECT_EQ(eng->describe().backend, nn::popcount_backend_name());
  EXPECT_EQ(eng->describe().lanes, nn::popcount_backend_lanes());

  // Only the proposed multiplier is a counter-of-ones machine.
  EXPECT_THROW(nn::make_engine({.kind = EngineKind::kFixed, .n_bits = 8,
                                .backend = MacBackend::kPopcount}),
               std::invalid_argument);
  // And the degree must be a legal power of two for N.
  EXPECT_THROW(nn::make_engine({.kind = EngineKind::kProposed, .n_bits = 4,
                                .bit_parallel = 16,
                                .backend = MacBackend::kPopcount}),
               std::invalid_argument);
}

TEST(Popcount, EnvLeanAppliesOnlyToEligibleAutoConfigs) {
  ASSERT_EQ(setenv("SCNN_BACKEND", "popcount", 1), 0);
  const auto leaned = nn::make_engine(
      {.kind = EngineKind::kProposed, .n_bits = 8, .bit_parallel = 8,
       .backend = MacBackend::kAuto});
  EXPECT_EQ(leaned->describe().backend, nn::popcount_backend_name());
  // The config-aware resolution reports the same answer the build gave.
  EXPECT_EQ(nn::resolved_backend(EngineConfig{.kind = EngineKind::kProposed,
                                              .n_bits = 8,
                                              .bit_parallel = 8,
                                              .backend = MacBackend::kAuto})
                .backend,
            nn::popcount_backend_name());

  // Other kinds lean back to auto kernel dispatch instead of throwing.
  const auto fixed = nn::make_engine(
      {.kind = EngineKind::kFixed, .n_bits = 8, .backend = MacBackend::kAuto});
  EXPECT_NE(fixed->describe().backend, nn::popcount_backend_name());

  // Explicit requests are never overridden by the env.
  const auto scalar = nn::make_engine({.kind = EngineKind::kProposed,
                                       .n_bits = 8,
                                       .backend = MacBackend::kScalar});
  EXPECT_EQ(scalar->describe().backend, "scalar");
  ASSERT_EQ(unsetenv("SCNN_BACKEND"), 0);
}

TEST(Popcount, ScalarEnvPinsTheScalarDatapathBitIdentically) {
  // SCNN_POPCOUNT_SCALAR pins the per-step popcounts to
  // __builtin_popcountll — the honest baseline for the bench's
  // "b = 16 vs scalar simulation" ratio, and the only way to cover the
  // scalar datapath under test on a vpopcntdq machine. Pinning must change
  // the reported backend, never the numbers.
  const EngineConfig cfg{.kind = EngineKind::kProposed,
                         .n_bits = 8,
                         .bit_parallel = 16,
                         .backend = MacBackend::kPopcount};
  const auto free_eng = nn::make_engine(cfg);

  ASSERT_EQ(setenv("SCNN_POPCOUNT_SCALAR", "1", 1), 0);
  EXPECT_STREQ(nn::popcount_backend_name(), "popcount");
  EXPECT_EQ(nn::popcount_backend_lanes(), 1);
  const auto pinned_eng = nn::make_engine(cfg);
  EXPECT_EQ(pinned_eng->describe().backend, "popcount");
  EXPECT_EQ(pinned_eng->describe().lanes, 1);
  ASSERT_EQ(unsetenv("SCNN_POPCOUNT_SCALAR"), 0);

  // "0" (and unset) mean no pin: the widest compiled datapath reports.
  ASSERT_EQ(setenv("SCNN_POPCOUNT_SCALAR", "0", 1), 0);
  EXPECT_STREQ(nn::popcount_backend_name(), free_eng->describe().backend.c_str());
  ASSERT_EQ(unsetenv("SCNN_POPCOUNT_SCALAR"), 0);

  const auto w = random_codes(96, 8, 31);
  const auto patches = random_codes(17 * 96, 8, 32);
  std::vector<std::int64_t> out_free(17), out_pinned(17);
  MacStats stats_free, stats_pinned;
  const nn::WeightCodeView view{std::span<const std::int32_t>(w)};
  free_eng->mac_rows(view, patches, out_free, stats_free);
  pinned_eng->mac_rows(view, patches, out_pinned, stats_pinned);
  EXPECT_EQ(out_free, out_pinned);
  EXPECT_EQ(stats_free, stats_pinned);
  for (std::size_t t = 0; t < 17; ++t) {
    const auto x = std::span<const std::int32_t>(patches).subspan(t * 96, 96);
    EXPECT_EQ(free_eng->mac(w, x), pinned_eng->mac(w, x)) << "t=" << t;
  }
}

TEST(Popcount, SessionForwardBitIdenticalToLutAt1And4Threads) {
  const auto data = data::make_synthetic_digits({.count = 4, .seed = 9});
  nn::InferenceSession session(nn::make_mnist_net(data.images.h()), /*threads=*/1);
  session.calibrate(data.images);

  session.set_engine({.kind = EngineKind::kProposed, .n_bits = 8, .threads = 1,
                      .backend = MacBackend::kScalar});
  const nn::Tensor ref = session.forward(data.images);
  const MacStats ref_stats = session.last_forward_stats();
  ASSERT_GT(ref_stats.macs, 0u);

  for (const int threads : {1, 4}) {
    for (const int b : {1, 16}) {
      session.set_engine({.kind = EngineKind::kProposed, .n_bits = 8,
                          .bit_parallel = b, .threads = threads,
                          .backend = MacBackend::kPopcount});
      EXPECT_EQ(session.backend().backend, nn::popcount_backend_name());
      const nn::Tensor got = session.forward(data.images);
      ASSERT_TRUE(ref.same_shape(got));
      EXPECT_EQ(std::memcmp(ref.data().data(), got.data().data(),
                            ref.size() * sizeof(float)),
                0)
          << "logits differ: threads=" << threads << " b=" << b;
      EXPECT_EQ(session.last_forward_stats(), ref_stats)
          << "threads=" << threads << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace scnn
