#include "hw/mac_designs.hpp"

#include <gtest/gtest.h>

namespace scnn::hw {
namespace {

TEST(MacDesigns, Table2TotalsWithinModelTolerance) {
  // Paper Table 2 totals (um^2). The component model reproduces them within
  // ~8% (it uses one shared UD-counter fit across the SC designs).
  struct Anchor { MacKind kind; int n; int b; double paper_total; };
  const Anchor anchors[] = {
      {MacKind::kFixedPoint, 5, 1, 155.2},   {MacKind::kConvScLfsr, 5, 1, 137.2},
      {MacKind::kConvScHalton, 5, 1, 172.7}, {MacKind::kProposedSerial, 5, 1, 142.7},
      {MacKind::kFixedPoint, 9, 1, 415.1},   {MacKind::kConvScLfsr, 9, 1, 232.8},
      {MacKind::kConvScHalton, 9, 1, 347.3}, {MacKind::kConvScEd, 9, 32, 891.9},
      {MacKind::kProposedSerial, 9, 1, 256.7},
      {MacKind::kProposedParallel, 9, 8, 336.9},
      {MacKind::kProposedParallel, 9, 16, 404.7},
      {MacKind::kProposedParallel, 9, 32, 447.5},
  };
  for (const auto& a : anchors) {
    const auto m = mac_breakdown(a.kind, a.n, 2, a.b);
    EXPECT_NEAR(m.total().area_um2, a.paper_total, a.paper_total * 0.08)
        << mac_kind_name(a.kind, a.b) << " MP=" << a.n;
  }
}

TEST(MacDesigns, ProposedSerialIsSmallestScDesignAt9Bits) {
  const double lfsr = mac_breakdown(MacKind::kConvScLfsr, 9).total().area_um2;
  const double halton = mac_breakdown(MacKind::kConvScHalton, 9).total().area_um2;
  const double ed = mac_breakdown(MacKind::kConvScEd, 9, 2, 32).total().area_um2;
  const double ours = mac_breakdown(MacKind::kProposedSerial, 9).total().area_um2;
  EXPECT_LT(ours, halton);
  EXPECT_LT(ours, ed);
  // LFSR per-MAC is slightly smaller than ours (Table 2: 232.8 vs 256.7) —
  // the win comes from latency and array-level sharing, not raw MAC area.
  EXPECT_NEAR(ours / lfsr, 256.7 / 232.8, 0.15);
}

TEST(MacDesigns, ScDesignsSmallerThanBinary) {
  for (int n : {5, 9}) {
    const double fix = mac_breakdown(MacKind::kFixedPoint, n).total().area_um2;
    EXPECT_LT(mac_breakdown(MacKind::kConvScLfsr, n).total().area_um2, fix);
    EXPECT_LT(mac_breakdown(MacKind::kProposedSerial, n).total().area_um2, fix);
  }
}

TEST(MacDesigns, ParallelAreaGrowsModestlyWithB) {
  // Sec. 4.3.1: "increasing the bit-parallelism ... increases the total
  // area, only modestly" — 32b-par is less than 2x the bit-serial area.
  const double serial = mac_breakdown(MacKind::kProposedSerial, 9).total().area_um2;
  const double b8 = mac_breakdown(MacKind::kProposedParallel, 9, 2, 8).total().area_um2;
  const double b16 = mac_breakdown(MacKind::kProposedParallel, 9, 2, 16).total().area_um2;
  const double b32 = mac_breakdown(MacKind::kProposedParallel, 9, 2, 32).total().area_um2;
  EXPECT_LT(serial, b8);
  EXPECT_LT(b8, b16);
  EXPECT_LT(b16, b32);
  EXPECT_LT(b32, 2.0 * serial);
}

TEST(MacDesigns, LatencyModel) {
  EXPECT_DOUBLE_EQ(mac_latency_cycles(MacKind::kFixedPoint, 9, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(mac_latency_cycles(MacKind::kConvScLfsr, 9, 1, 0), 512.0);
  EXPECT_DOUBLE_EQ(mac_latency_cycles(MacKind::kConvScEd, 9, 32, 0), 16.0);
  EXPECT_DOUBLE_EQ(mac_latency_cycles(MacKind::kProposedSerial, 9, 1, 11.6), 11.6);
  EXPECT_NEAR(mac_latency_cycles(MacKind::kProposedParallel, 9, 8, 11.6), 1.45, 0.01);
  // Amortized over an accumulation, parallel latency can go sub-cycle.
  EXPECT_NEAR(mac_latency_cycles(MacKind::kProposedParallel, 9, 32, 2.0), 0.0625, 1e-9);
}

TEST(MacDesigns, SharingRules) {
  const auto fix = sharing_rule(MacKind::kFixedPoint, 9);
  EXPECT_FALSE(fix.share_sng_register);
  EXPECT_EQ(fix.array_level_extra.area_um2, 0.0);

  const auto conv = sharing_rule(MacKind::kConvScLfsr, 9);
  EXPECT_FALSE(conv.share_sng_register);         // x-side SNG stays per-MAC
  EXPECT_GT(conv.array_level_extra.area_um2, 0); // weight SNG added once

  const auto ours = sharing_rule(MacKind::kProposedSerial, 9);
  EXPECT_TRUE(ours.share_sng_register);   // FSM shared
  EXPECT_TRUE(ours.share_multiplier);     // down counter shared
}

TEST(MacDesigns, Table2RowSetsMatchPaper) {
  // MP=5: four rows (no ED, no parallel variants); MP=9: eight rows.
  EXPECT_EQ(table2_rows(5).size(), 4u);
  EXPECT_EQ(table2_rows(9).size(), 8u);
}

TEST(MacDesigns, InvalidParallelDegreeThrows) {
  EXPECT_THROW(mac_breakdown(MacKind::kProposedParallel, 9, 2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace scnn::hw
