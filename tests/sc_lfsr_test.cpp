#include "sc/lfsr.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace scnn::sc {
namespace {

// Property: every supported width has a maximal-length feedback polynomial —
// the LFSR visits all 2^n - 1 nonzero states before repeating.
class LfsrMaximalPeriod : public ::testing::TestWithParam<int> {};

TEST_P(LfsrMaximalPeriod, VisitsAllNonzeroStates) {
  const int n = GetParam();
  Lfsr lfsr(n, 1);
  const std::uint64_t period = (std::uint64_t{1} << n) - 1;
  std::set<std::uint32_t> seen;
  seen.insert(lfsr.state());
  for (std::uint64_t i = 1; i < period; ++i) {
    const auto s = lfsr.step();
    ASSERT_NE(s, 0u) << "lock-up state reached, n=" << n;
    ASSERT_TRUE(seen.insert(s).second) << "early repeat at step " << i << ", n=" << n;
  }
  // One more step returns to the start.
  EXPECT_EQ(lfsr.step(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, LfsrMaximalPeriod,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16));

TEST(Lfsr, ZeroSeedCoerced) {
  Lfsr l(5, 0);
  EXPECT_NE(l.state(), 0u);
}

TEST(Lfsr, SeedMaskedToWidth) {
  Lfsr l(4, 0xFFu);
  EXPECT_LT(l.state(), 16u);
}

TEST(Lfsr, UnsupportedWidthThrows) {
  EXPECT_THROW(Lfsr(1, 1), std::invalid_argument);
  EXPECT_THROW(Lfsr(17, 1), std::invalid_argument);
}

TEST(Lfsr, DifferentSeedsGivePhaseShiftedSequences) {
  // Same sequence, different phase: conventional SC relies on seed choice to
  // decorrelate parallel SNGs.
  Lfsr a(8, 1), b(8, 77);
  std::vector<std::uint32_t> sa, sb;
  for (int i = 0; i < 255; ++i) {
    sa.push_back(a.step());
    sb.push_back(b.step());
  }
  EXPECT_NE(sa, sb);
}

}  // namespace
}  // namespace scnn::sc
