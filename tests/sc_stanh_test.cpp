#include "sc/stanh.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/fixed_point.hpp"
#include "sc/sng.hpp"

namespace scnn::sc {
namespace {

TEST(StanhFsm, ConstructionRules) {
  EXPECT_THROW(StanhFsm(0), std::invalid_argument);
  EXPECT_THROW(StanhFsm(7), std::invalid_argument);
  EXPECT_NO_THROW(StanhFsm(8));
}

TEST(StanhFsm, SaturatesAtEnds) {
  StanhFsm fsm(4);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fsm.step(true));
  EXPECT_EQ(fsm.state(), 3);
  for (int i = 0; i < 10; ++i) fsm.step(false);
  EXPECT_EQ(fsm.state(), 0);
  fsm.reset();
  EXPECT_EQ(fsm.state(), 2);
}

TEST(Stanh, ApproximatesTanhShape) {
  // Bipolar input v through a K-state FSM ~ tanh(K/2 * v): check sign,
  // monotonicity and saturation at a few points.
  // LFSR streams: the FSM tanh needs random-looking inputs; a deterministic
  // alternating stream (e.g. Halton at v = 0) locks the hysteresis high.
  const int n = 10;
  const int states = 8;  // gain K/2 = 4
  auto sng = make_sng("lfsr", n);
  std::vector<double> inputs = {-0.9, -0.5, -0.2, 0.0, 0.2, 0.5, 0.9};
  std::vector<double> outputs;
  for (double v : inputs) {
    sng->reset();
    const auto code = static_cast<std::uint32_t>(
        common::quantize(v, n) + (1 << (n - 1)));
    const auto stream = generate_stream(*sng, code, std::size_t{1} << n);
    outputs.push_back(stanh_stream(stream, states).bipolar_value());
  }
  for (std::size_t i = 0; i + 1 < outputs.size(); ++i)
    EXPECT_LE(outputs[i], outputs[i + 1] + 0.05) << i;  // monotone-ish
  EXPECT_NEAR(outputs[3], 0.0, 0.3);                    // odd around 0
  EXPECT_GT(outputs.back(), 0.9);                       // saturates
  EXPECT_LT(outputs.front(), -0.9);
  // Mid-range tracks tanh(4 * v) loosely (SC tanh is an approximation).
  EXPECT_NEAR(outputs[4], std::tanh(4 * 0.2), 0.4);
}

TEST(FullyParallelNeuron, ComputesActivatedDotProduct) {
  // d = 4 inputs; weights/activations chosen so sum w_i x_i is decisively
  // positive or negative; the neuron must saturate accordingly.
  const int n = 10;
  const int d = 4;
  const std::size_t len = std::size_t{1} << n;
  auto make_streams = [&](const std::vector<double>& vals, const char* kind,
                          std::uint32_t variant) {
    std::vector<Bitstream> out;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      auto sng = make_sng(kind, n, variant + static_cast<std::uint32_t>(i));
      const auto code = static_cast<std::uint32_t>(
          common::quantize(vals[i], n) + (1 << (n - 1)));
      out.push_back(generate_stream(*sng, code, len));
    }
    return out;
  };
  FullyParallelNeuron neuron(d, 8);

  const auto xs = make_streams({0.8, 0.7, 0.9, 0.6}, "lfsr", 0);
  const auto ws_pos = make_streams({0.8, 0.7, 0.9, 0.6}, "lfsr", 10);
  EXPECT_GT(neuron.run(xs, ws_pos), 0.8);  // strongly positive sum

  neuron.reset();
  const auto ws_neg = make_streams({-0.8, -0.7, -0.9, -0.6}, "lfsr", 10);
  EXPECT_LT(neuron.run(xs, ws_neg), -0.8);  // strongly negative sum
}

TEST(FullyParallelNeuron, NearZeroSumGivesNearZeroOutput) {
  const int n = 10;
  const int d = 2;
  const std::size_t len = std::size_t{1} << n;
  std::vector<Bitstream> xs, ws;
  for (int i = 0; i < d; ++i) {
    auto sx = make_sng("lfsr", n, static_cast<std::uint32_t>(i));
    auto sw = make_sng("lfsr", n, static_cast<std::uint32_t>(20 + i));
    // w = (+0.5, -0.5), x = (0.6, 0.6): sum ~ 0.
    xs.push_back(generate_stream(*sx, static_cast<std::uint32_t>(
        common::quantize(0.6, n) + (1 << (n - 1))), len));
    ws.push_back(generate_stream(*sw, static_cast<std::uint32_t>(
        common::quantize(i == 0 ? 0.5 : -0.5, n) + (1 << (n - 1))), len));
  }
  FullyParallelNeuron neuron(d, 8);
  EXPECT_NEAR(neuron.run(xs, ws), 0.0, 0.35);
}

TEST(FullyParallelNeuron, RejectsBadFanIn) {
  EXPECT_THROW(FullyParallelNeuron(0, 8), std::invalid_argument);
}

}  // namespace
}  // namespace scnn::sc
