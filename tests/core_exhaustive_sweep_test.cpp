// Exhaustive bit-exactness sweep over the proposed multiplier (Sec. 2.2-2.5):
// for every precision N in [4, 8] and EVERY operand pair, the implementations
// must reproduce the paper's closed form Σ_i round(k/2^i)·x_(N-i), stay
// within the guaranteed N/2-LSB error bound against the exact product, and
// the bit-parallel datapath must equal the bit-serial one exactly.
//
// The closed form is recomputed here from first principles (round-half-up
// division by 2^i) so this file is an independent cross-check, not a
// restatement of src/core.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/bit_parallel.hpp"
#include "core/scmac.hpp"

namespace scnn::core {
namespace {

/// round(k / 2^i), ties away from zero (the paper's half-up rounding) —
/// deliberately re-derived, not common::round_div_pow2.
std::uint64_t round_half_up_div_pow2(std::uint64_t k, int i) {
  return (k + (std::uint64_t{1} << (i - 1))) >> i;
}

/// The paper's partial sum P_k = Σ_{i=1..N} round(k/2^i) · x_(N-i) for an
/// unsigned N-bit code x.
std::uint64_t closed_form_partial_sum(int n, std::uint32_t x, std::uint64_t k) {
  std::uint64_t p = 0;
  for (int i = 1; i <= n; ++i)
    if ((x >> (n - i)) & 1u) p += round_half_up_div_pow2(k, i);
  return p;
}

class ExhaustiveSweep : public ::testing::TestWithParam<int> {};

// Sec. 2.3: the unsigned multiplier IS the closed form, for every (x, k),
// and the closed form is within N/2 counter LSBs of the exact x·k/2^N.
TEST_P(ExhaustiveSweep, UnsignedEqualsClosedFormWithinPaperBound) {
  const int n = GetParam();
  const std::uint32_t span = 1u << n;
  const double bound = theoretical_error_bound_lsb(n);
  for (std::uint32_t x = 0; x < span; ++x) {
    for (std::uint32_t k = 0; k < span; ++k) {
      const std::uint64_t expected = closed_form_partial_sum(n, x, k);
      ASSERT_EQ(multiply_unsigned(n, x, k), expected) << "x=" << x << " k=" << k;
      const double exact = static_cast<double>(x) * k / static_cast<double>(span);
      ASSERT_LE(std::abs(static_cast<double>(expected) - exact), bound)
          << "x=" << x << " k=" << k;
    }
  }
}

// Sec. 2.4: for every signed pair, one ScMac accumulation produces exactly
// the closed form sign(qw)·(2·P_k − k) over the sign-flipped operand, takes
// exactly k = |qw| cycles, and stays within N/2 LSBs of the exact product.
TEST_P(ExhaustiveSweep, ScMacEqualsSignedClosedFormForEveryPair) {
  const int n = GetParam();
  const std::int32_t half = 1 << (n - 1);
  const double bound = theoretical_error_bound_lsb(n);
  ScMac mac(n, /*accum_bits=*/2);
  for (std::int32_t qx = -half; qx < half; ++qx) {
    const auto u = static_cast<std::uint32_t>(qx + half);  // sign-bit flip
    for (std::int32_t qw = -half; qw < half; ++qw) {
      const std::uint32_t k = multiply_latency(qw);
      const auto p = static_cast<std::int64_t>(closed_form_partial_sum(n, u, k));
      const std::int64_t updown = 2 * p - static_cast<std::int64_t>(k);
      const std::int64_t expected = qw < 0 ? -updown : updown;

      ASSERT_EQ(multiply_signed(n, qx, qw), expected) << "qx=" << qx << " qw=" << qw;
      mac.reset();
      ASSERT_EQ(mac.accumulate(qx, qw), k) << "qx=" << qx << " qw=" << qw;
      ASSERT_EQ(mac.value(), expected) << "qx=" << qx << " qw=" << qw;
      ASSERT_EQ(mac.total_cycles(), k);

      const double exact = static_cast<double>(qw) * static_cast<double>(qx) /
                           static_cast<double>(half);
      ASSERT_LE(std::abs(static_cast<double>(expected) - exact), bound)
          << "qx=" << qx << " qw=" << qw;
    }
  }
}

// Sec. 2.5: bit-parallel processing is EXACTLY bit-serial, for every pair
// and every column degree b, in ceil(k/b) cycles.
TEST_P(ExhaustiveSweep, BitParallelEqualsBitSerialForEveryPair) {
  const int n = GetParam();
  const std::int32_t half = 1 << (n - 1);
  for (const int b : {1, 2, 4, 8}) {
    ASSERT_LE(b, half) << "column degree must fit the stream";
    const BitParallelMultiplier bp(n, b);
    for (std::int32_t qx = -half; qx < half; ++qx) {
      for (std::int32_t qw = -half; qw < half; ++qw) {
        const auto r = bp.multiply(qx, qw);
        ASSERT_EQ(r.product, multiply_signed(n, qx, qw))
            << "n=" << n << " b=" << b << " qx=" << qx << " qw=" << qw;
        const std::uint32_t k = multiply_latency(qw);
        ASSERT_EQ(r.cycles, (k + static_cast<std::uint32_t>(b) - 1) /
                                static_cast<std::uint32_t>(b))
            << "n=" << n << " b=" << b << " qw=" << qw;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(N4to8, ExhaustiveSweep, ::testing::Values(4, 5, 6, 7, 8),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace scnn::core
