// Trend-level integration tests: the monotone behaviours Fig. 6/7 rely on,
// checked as properties so regressions in any layer of the stack surface
// here even when absolute accuracies move.
#include <gtest/gtest.h>

#include <vector>

#include "accel/accelerator.hpp"
#include "common/rng.hpp"
#include "core/conv_scheduler.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"

namespace scnn {
namespace {

struct Fixture {
  nn::Network net;
  data::Dataset test;
};

Fixture trained_fixture() {
  Fixture f;
  const auto train = data::make_synthetic_digits({.count = 350, .seed = 201});
  f.test = data::make_synthetic_digits({.count = 120, .seed = 202});
  f.net = nn::make_mnist_net(28, 1, 31);
  nn::SgdTrainer trainer({.epochs = 5, .batch_size = 25, .learning_rate = 0.01f});
  trainer.train(f.net, train.images, train.labels);
  nn::calibrate_network(f.net, nn::batch_slice(train.images, 0, 50));
  return f;
}

TEST(Trends, AccuracyConvergesToFloatWithPrecision) {
  // Fig. 6's x-axis trend: for every engine, high precision must not be
  // (meaningfully) worse than very low precision, and at N = 10 every
  // engine must sit near the float baseline.
  auto f = trained_fixture();
  const double float_acc = f.net.accuracy(f.test.images, f.test.labels);
  nn::EnginePool pool;
  for (const nn::EngineKind kind :
       {nn::EngineKind::kFixed, nn::EngineKind::kScLfsr, nn::EngineKind::kProposed}) {
    auto acc_at = [&](int n) {
      nn::set_conv_engine(f.net, pool.get({.kind = kind, .n_bits = n}));
      const double a = f.net.accuracy(f.test.images, f.test.labels);
      nn::set_conv_engine(f.net, nullptr);
      return a;
    };
    const double low = acc_at(4), high = acc_at(10);
    EXPECT_GE(high + 0.03, low) << nn::to_string(kind);
    EXPECT_GE(high, float_acc - 0.05) << nn::to_string(kind) << " should converge to float";
  }
}

TEST(Trends, ProposedLatencyScalesWithPrecision) {
  // Sec. 3.2: avg enable count ~ |w| * 2^(N-1), so it roughly doubles per
  // extra bit of precision for the same weights.
  auto f = trained_fixture();
  std::vector<double> avg;
  for (int n : {6, 7, 8, 9}) {
    std::vector<std::int32_t> codes;
    for (nn::Conv2D* c : f.net.conv_layers()) {
      const auto q = c->quantized_weights(n);
      codes.insert(codes.end(), q.begin(), q.end());
    }
    avg.push_back(hw::average_enable_cycles(codes));
  }
  for (std::size_t i = 0; i + 1 < avg.size(); ++i) {
    EXPECT_GT(avg[i + 1], avg[i] * 1.5) << i;
    EXPECT_LT(avg[i + 1], avg[i] * 2.5) << i;
  }
}

TEST(Trends, AccelComputeCyclesMatchScheduler) {
  // accel::compute_cycles must agree with core::schedule_conv for the
  // proposed designs (same underlying model).
  common::SplitMix64 rng(5);
  const core::ConvDims dims{.M = 8, .Z = 4, .H = 10, .W = 10, .K = 3, .S = 1, .P = 1};
  std::vector<std::int32_t> codes(static_cast<std::size_t>(dims.M) * dims.Z * 9);
  for (auto& q : codes) q = static_cast<std::int32_t>(rng.next_below(64)) - 32;
  accel::AcceleratorConfig cfg;
  cfg.tiling = {.tm = 4, .tr = 4, .tc = 4};
  cfg.n_bits = 7;
  cfg.arithmetic = hw::MacKind::kProposedSerial;
  const accel::LayerWorkload layer{.name = "c", .dims = dims, .weight_codes = codes};
  EXPECT_EQ(accel::compute_cycles(cfg, layer),
            core::schedule_conv(dims, cfg.tiling, codes, 7, 1).total_cycles);
}

TEST(Trends, BitParallelDegreeReducesScheduledCycles) {
  common::SplitMix64 rng(6);
  const core::ConvDims dims{.M = 4, .Z = 4, .H = 12, .W = 12, .K = 3, .S = 1, .P = 0};
  std::vector<std::int32_t> codes(static_cast<std::size_t>(dims.M) * dims.Z * 9);
  for (auto& q : codes) q = static_cast<std::int32_t>(rng.next_below(256)) - 128;
  const core::Tiling t{.tm = 2, .tr = 4, .tc = 4};
  std::uint64_t prev = core::schedule_conv(dims, t, codes, 9, 1).total_cycles;
  for (int b : {2, 4, 8, 16}) {
    const auto cur = core::schedule_conv(dims, t, codes, 9, b).total_cycles;
    EXPECT_LE(cur, prev) << "b=" << b;
    prev = cur;
  }
}

}  // namespace
}  // namespace scnn
