#include "core/bit_parallel.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/scmac.hpp"

namespace scnn::core {
namespace {

// THE claim of Sec. 2.5: "our bit-parallel computation result is exactly the
// same as our bit-serial result" — exhaustive over all inputs per (N, b).
class ParallelEqualsSerial : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelEqualsSerial, ExactEquality) {
  const auto [n, b] = GetParam();
  const BitParallelMultiplier bp(n, b);
  const std::int32_t half = 1 << (n - 1);
  const int stride = n >= 8 ? 3 : 1;
  for (std::int32_t qx = -half; qx < half; qx += stride) {
    for (std::int32_t qw = -half; qw < half; qw += stride) {
      const auto r = bp.multiply(qx, qw);
      ASSERT_EQ(r.product, multiply_signed(n, qx, qw))
          << "n=" << n << " b=" << b << " qx=" << qx << " qw=" << qw;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ParallelEqualsSerial,
                         ::testing::Values(std::tuple{4, 2}, std::tuple{4, 4}, std::tuple{5, 2},
                                           std::tuple{5, 8}, std::tuple{6, 4}, std::tuple{8, 8},
                                           std::tuple{8, 16}, std::tuple{9, 8}, std::tuple{9, 32},
                                           std::tuple{10, 16}));

TEST(BitParallel, CyclesAreCeilKOverB) {
  const BitParallelMultiplier bp(9, 8);
  EXPECT_EQ(bp.multiply(100, 0).cycles, 0u);
  EXPECT_EQ(bp.multiply(100, 1).cycles, 1u);
  EXPECT_EQ(bp.multiply(100, 8).cycles, 1u);
  EXPECT_EQ(bp.multiply(100, 9).cycles, 2u);
  EXPECT_EQ(bp.multiply(100, -17).cycles, 3u);
  EXPECT_EQ(bp.multiply(100, -256).cycles, 32u);
}

TEST(BitParallel, DegreeOneIsSerial) {
  const BitParallelMultiplier bp(6, 1);
  for (std::int32_t qw : {-32, -7, 0, 5, 31}) {
    const auto r = bp.multiply(-13, qw);
    EXPECT_EQ(r.cycles, multiply_latency(qw));
    EXPECT_EQ(r.product, multiply_signed(6, -13, qw));
  }
}

TEST(BitParallel, OnesInColumnMatchesSerialWindow) {
  // The hardware ones-counter over column `col` top `rows` bits equals
  // literally counting stream bits in that window.
  const int n = 6, b = 4;
  const BitParallelMultiplier bp(n, b);
  FsmMuxSequence seq(n);
  for (std::uint32_t u : {0u, 7u, 32u, 45u, 63u}) {
    for (std::uint32_t col = 0; col < 8; ++col) {
      for (std::uint32_t rows = 0; rows <= 4; ++rows) {
        std::uint32_t direct = 0;
        for (std::uint32_t r = 1; r <= rows; ++r)
          direct += seq.stream_bit(u, static_cast<std::uint64_t>(col) * b + r) ? 1 : 0;
        ASSERT_EQ(bp.ones_in_column(u, col, rows), direct)
            << "u=" << u << " col=" << col << " rows=" << rows;
      }
    }
  }
}

TEST(BitParallel, RejectsInvalidDegrees) {
  EXPECT_THROW(BitParallelMultiplier(8, 3), std::invalid_argument);
  EXPECT_THROW(BitParallelMultiplier(8, 0), std::invalid_argument);
  EXPECT_THROW(BitParallelMultiplier(4, 16), std::invalid_argument);
  EXPECT_NO_THROW(BitParallelMultiplier(4, 8));
}

}  // namespace
}  // namespace scnn::core
