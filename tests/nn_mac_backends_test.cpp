// Cross-backend equivalence for the SIMD-dispatched mac_rows kernels: every
// kernel compiled and supported on this machine must reproduce the scalar
// reference bit-exactly — output values, saturation counts, MacStats and
// k-histograms — at the kernel, engine, and whole-network levels. Lives in
// the `parallel`-labeled binary so the TSan build exercises the kernels
// under the threaded inference runtime, and the ASan/UBSan CI leg covers
// their gathers and stores.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "core/scmac.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/inference_session.hpp"
#include "nn/mac_backends/mac_backends.hpp"
#include "nn/mac_engine.hpp"
#include "nn/network.hpp"

namespace scnn {
namespace {

using nn::EngineConfig;
using nn::EngineKind;
using nn::MacBackend;
using nn::MacStats;
using nn::backends::Kernel;

std::vector<std::int32_t> random_codes(std::size_t count, int n_bits,
                                       std::uint64_t seed) {
  const std::int32_t half = 1 << (n_bits - 1);
  std::vector<std::int32_t> codes(count);
  common::SplitMix64 rng(seed);
  for (auto& c : codes)
    c = static_cast<std::int32_t>(rng.next_below(2u * static_cast<unsigned>(half))) -
        half;
  return codes;
}

/// Parks an ambient SCNN_BACKEND (the forced-backend CI legs) for the test's
/// duration and restores it afterwards. Tests asserting where kAuto *resolves*
/// need this, because the env legitimately outranks the default preference
/// order — under SCNN_BACKEND=scalar, kAuto honestly resolves to scalar.
struct BackendEnvGuard {
  BackendEnvGuard() {
    if (const char* env = std::getenv("SCNN_BACKEND")) {
      saved = env;
      unsetenv("SCNN_BACKEND");
    }
  }
  ~BackendEnvGuard() {
    if (saved)
      setenv("SCNN_BACKEND", saved->c_str(), 1);
    else
      unsetenv("SCNN_BACKEND");
  }
  std::optional<std::string> saved;
};

TEST(MacBackends, EveryAvailableKernelMatchesScalarReference) {
  const Kernel& scalar = nn::backends::scalar_kernel();
  const auto kernels = nn::backends::available_kernels();
  ASSERT_GE(kernels.size(), 1u);
  ASSERT_STREQ(kernels.front()->name, "scalar");

  for (const int n_bits : {4, 8}) {
    const sc::ProductLut lut = core::make_proposed_lut(n_bits);
    // A = 0 makes saturation common at N = 4; A = 2 is the paper default.
    for (const int accum_bits : {0, 2}) {
      const int bits = n_bits + accum_bits;
      const std::int64_t lo = common::int_min_of(bits);
      const std::int64_t hi = common::int_max_of(bits);
      for (const std::size_t d :
           {std::size_t{0}, std::size_t{1}, std::size_t{5}, std::size_t{27}}) {
        // Tiles straddling every vector width and its tails, including 0:
        // one below/above each of the 8- and 16-lane widths plus 2w-1/2w+1.
        for (const std::size_t tile :
             {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7},
              std::size_t{8}, std::size_t{9}, std::size_t{15}, std::size_t{16},
              std::size_t{17}, std::size_t{31}, std::size_t{32},
              std::size_t{33}}) {
          const std::uint64_t seed = 1000 * d + tile + static_cast<std::uint64_t>(
                                                           n_bits * 31 + accum_bits);
          const auto w = random_codes(d, n_bits, seed);
          const auto patches = random_codes(d * tile, n_bits, seed + 1);

          std::vector<std::int64_t> ref(tile, -1);
          const std::uint64_t ref_sat = scalar.narrow(lut, w, patches, ref, lo, hi);

          for (const Kernel* k : kernels) {
            std::vector<std::int64_t> out(tile, -2);
            const std::uint64_t sat = k->narrow(lut, w, patches, out, lo, hi);
            const std::string label = std::string(k->name) + " N=" +
                                      std::to_string(n_bits) + " A=" +
                                      std::to_string(accum_bits) + " d=" +
                                      std::to_string(d) + " tile=" +
                                      std::to_string(tile);
            EXPECT_EQ(out, ref) << label;
            EXPECT_EQ(sat, ref_sat) << label;

            // The shared wide (int64) path must agree wherever narrow is
            // exact — it is the fallback for accumulators beyond 30 bits.
            std::vector<std::int64_t> wide(tile, -3);
            EXPECT_EQ(k->wide(lut, w, patches, wide, lo, hi), ref_sat) << label;
            EXPECT_EQ(wide, ref) << label;
          }
        }
      }
    }
  }
}

TEST(MacBackends, SparseKernelsMatchDenseScalarAcrossDensities) {
  const Kernel& scalar = nn::backends::scalar_kernel();
  const auto kernels = nn::backends::available_kernels();

  for (const int n_bits : {4, 6, 8}) {
    const sc::ProductLut lut = core::make_proposed_lut(n_bits);
    const int bits = n_bits + 2;
    const std::int64_t lo = common::int_min_of(bits);
    const std::int64_t hi = common::int_max_of(bits);
    const std::size_t d = 27;
    // Nominal nonzero densities; 0% gives the all-skipped row, 100% the
    // fully dense one (modulo codes that randomly land on 0 anyway).
    for (const int density : {0, 10, 50, 100}) {
      for (const std::size_t tile :
           {std::size_t{1}, std::size_t{17}, std::size_t{33}}) {
        const std::uint64_t seed =
            9000 + 100 * static_cast<std::uint64_t>(n_bits) + density + tile;
        auto w = random_codes(d, n_bits, seed);
        common::SplitMix64 zrng(seed + 2);
        for (auto& c : w)
          if (static_cast<int>(zrng.next_below(100)) >= density) c = 0;
        const auto patches = random_codes(d * tile, n_bits, seed + 1);

        std::vector<std::int64_t> ref(tile, -1);
        const std::uint64_t ref_sat = scalar.narrow(lut, w, patches, ref, lo, hi);

        std::vector<std::int32_t> cols, codes;
        for (std::size_t j = 0; j < d; ++j)
          if (w[j] != 0) {
            cols.push_back(static_cast<std::int32_t>(j));
            codes.push_back(w[j]);
          }

        for (const Kernel* k : kernels) {
          const std::string label = std::string(k->name) + " N=" +
                                    std::to_string(n_bits) + " density=" +
                                    std::to_string(density) + "% tile=" +
                                    std::to_string(tile);
          std::vector<std::int64_t> out(tile, -2);
          EXPECT_EQ(k->sparse_narrow(lut, cols, codes, d, patches, out, lo, hi),
                    ref_sat)
              << label;
          EXPECT_EQ(out, ref) << label;

          std::vector<std::int64_t> wide(tile, -3);
          EXPECT_EQ(k->sparse_wide(lut, cols, codes, d, patches, wide, lo, hi),
                    ref_sat)
              << label;
          EXPECT_EQ(wide, ref) << label;
        }
      }
    }
  }
}

TEST(MacBackends, EngineMacRowsIdenticalAcrossBackendsIncludingKHist) {
  std::vector<MacBackend> reqs{MacBackend::kAuto, MacBackend::kScalar};
  if (nn::backends::best_simd_kernel()) reqs.push_back(MacBackend::kSimd);

  for (const int n_bits : {4, 8}) {
    const std::size_t d = 25, tile = 19;
    const auto w = random_codes(d, n_bits, 77);
    const auto patches = random_codes(d * tile, n_bits, 78);

    const auto ref_engine = nn::make_engine({.kind = EngineKind::kProposed,
                                             .n_bits = n_bits,
                                             .backend = MacBackend::kScalar});
    // Serial per-element reference through mac(): the ground truth the
    // batched contract is defined against.
    std::vector<std::int64_t> ref(tile);
    MacStats ref_stats;
    ref_stats.detail = true;
    for (std::size_t t = 0; t < tile; ++t)
      ref[t] = ref_engine->mac(w, std::span(patches).subspan(t * d, d), ref_stats);

    for (const MacBackend b : reqs) {
      const auto engine = nn::make_engine(
          {.kind = EngineKind::kProposed, .n_bits = n_bits, .backend = b});
      std::vector<std::int64_t> out(tile);
      MacStats stats;
      stats.detail = true;
      engine->mac_rows(nn::WeightCodeView(w), patches, out, stats);
      EXPECT_EQ(out, ref) << to_string(b);
      EXPECT_EQ(stats, ref_stats) << to_string(b);  // macs/products/sat/k_hist
      EXPECT_GT(engine->describe().lanes, 0) << to_string(b);
    }
  }
}

TEST(MacBackends, SessionForwardBitIdenticalScalarVsSimdAt1And4Threads) {
  if (!nn::backends::best_simd_kernel())
    GTEST_SKIP() << "no SIMD mac_rows kernel compiled+supported on this machine";

  const auto data = data::make_synthetic_digits({.count = 4, .seed = 5});
  nn::InferenceSession session(nn::make_mnist_net(data.images.h()), /*threads=*/1);
  session.calibrate(data.images);

  session.set_engine({.kind = EngineKind::kProposed, .n_bits = 8, .threads = 1,
                      .backend = MacBackend::kScalar});
  const nn::Tensor ref = session.forward(data.images);
  const MacStats ref_stats = session.last_forward_stats();
  ASSERT_GT(ref_stats.macs, 0u);

  for (const int threads : {1, 4}) {
    session.set_engine({.kind = EngineKind::kProposed, .n_bits = 8,
                        .threads = threads, .backend = MacBackend::kSimd});
    EXPECT_NE(session.backend().backend, "scalar");
    const nn::Tensor got = session.forward(data.images);
    ASSERT_TRUE(ref.same_shape(got));
    EXPECT_EQ(std::memcmp(ref.data().data(), got.data().data(),
                          ref.size() * sizeof(float)),
              0)
        << "logits differ at " << threads << " threads";
    EXPECT_EQ(session.last_forward_stats(), ref_stats) << threads << " threads";
  }
}

TEST(MacBackends, EnvOverrideForcesAutoButNeverExplicitRequests) {
  BackendEnvGuard guard;  // restores any ambient value for later tests
  ASSERT_EQ(setenv("SCNN_BACKEND", "scalar", /*overwrite=*/1), 0);
  EXPECT_EQ(nn::resolved_backend(MacBackend::kAuto).backend, "scalar");
  // An explicit request wins over the environment.
  EXPECT_EQ(nn::resolved_backend(MacBackend::kScalar).backend, "scalar");
  if (const Kernel* simd = nn::backends::best_simd_kernel())
    EXPECT_EQ(nn::resolved_backend(MacBackend::kSimd).backend, simd->name);

  // The env channel also accepts concrete kernel names (tune-file idiom).
  for (const Kernel* k : nn::backends::available_kernels()) {
    ASSERT_EQ(setenv("SCNN_BACKEND", k->name, 1), 0);
    EXPECT_EQ(nn::resolved_backend(MacBackend::kAuto).backend, k->name);
  }

  ASSERT_EQ(setenv("SCNN_BACKEND", "bogus", 1), 0);
  EXPECT_THROW((void)nn::resolved_backend(MacBackend::kAuto), std::invalid_argument);
  EXPECT_NO_THROW((void)nn::resolved_backend(MacBackend::kScalar));

  ASSERT_EQ(unsetenv("SCNN_BACKEND"), 0);
  const Kernel* simd = nn::backends::best_simd_kernel();
  EXPECT_EQ(nn::resolved_backend(MacBackend::kAuto).backend,
            simd ? simd->name : "scalar");
}

TEST(MacBackends, SimdRequestThrowsWhereUnavailable) {
  if (nn::backends::best_simd_kernel()) {
    // With a SIMD kernel present the request must build and self-describe.
    const auto engine = nn::make_engine(
        {.kind = EngineKind::kProposed, .n_bits = 8, .backend = MacBackend::kSimd});
    EXPECT_NE(engine->describe().backend, "scalar");
  } else {
    EXPECT_THROW(nn::make_engine({.kind = EngineKind::kProposed, .n_bits = 8,
                                  .backend = MacBackend::kSimd}),
                 std::invalid_argument);
  }
}

TEST(MacBackends, WideAccumulatorConfigReportsTheRealWidePath) {
  // N = 12, A = 20 -> 32-bit accumulator: outside every SIMD kernel's int32
  // narrow lanes. Kernels without a native wide path (sse2/avx2/neon) share
  // the scalar int64 block, and describe() must say "scalar" honestly;
  // AVX-512 carries its own 8x int64 wide kernel and keeps its name.
  BackendEnvGuard guard;  // this asserts kAuto resolution; park any ambient env
  const auto engine = nn::make_engine({.kind = EngineKind::kFixed, .n_bits = 12,
                                       .accum_bits = 20,
                                       .backend = MacBackend::kAuto});
  const Kernel* best = nn::backends::best_simd_kernel();
  if (best && nn::backends::kernel_has_native_wide(*best)) {
    EXPECT_EQ(engine->describe().backend, best->name);
    EXPECT_EQ(engine->describe().lanes, best->wide_lanes);
  } else {
    EXPECT_EQ(engine->describe().backend, "scalar");
  }

  // And the wide path is still bit-exact against the serial mac() loop.
  const std::size_t d = 9, tile = 11;
  const auto w = random_codes(d, 12, 91);
  const auto patches = random_codes(d * tile, 12, 92);
  std::vector<std::int64_t> out(tile);
  MacStats stats;
  engine->mac_rows(nn::WeightCodeView(w), patches, out, stats);
  for (std::size_t t = 0; t < tile; ++t)
    EXPECT_EQ(out[t], engine->mac(w, std::span(patches).subspan(t * d, d))) << t;
}

TEST(MacBackends, BackendStringsRoundTrip) {
  for (const MacBackend b : {MacBackend::kAuto, MacBackend::kScalar,
                             MacBackend::kSimd, MacBackend::kPopcount})
    EXPECT_EQ(nn::mac_backend_from_string(to_string(b)), b);
  // Concrete kernel names are not MacBackend values — they belong to the
  // SCNN_BACKEND env / tune-file channel (kernel_by_name), not the config.
  EXPECT_THROW(nn::mac_backend_from_string("avx512"), std::invalid_argument);
}

TEST(MacBackends, KernelByNameFindsExactlyTheRunnableKernels) {
  EXPECT_EQ(nn::backends::kernel_by_name("scalar"),
            &nn::backends::scalar_kernel());
  EXPECT_EQ(nn::backends::kernel_by_name("avx2"), nn::backends::avx2_kernel());
  EXPECT_EQ(nn::backends::kernel_by_name("avx512"),
            nn::backends::avx512_kernel());
  EXPECT_EQ(nn::backends::kernel_by_name("bogus"), nullptr);
  for (const Kernel* k : nn::backends::available_kernels())
    EXPECT_EQ(nn::backends::kernel_by_name(k->name), k) << k->name;
}

TEST(MacBackends, KernelSupportInventoryIsConsistent) {
  // The `scnn_cli info` inventory: every known kernel appears once, a
  // supported kernel is always compiled, and supported == runnable.
  const auto support = nn::backends::kernel_support();
  ASSERT_GE(support.size(), 5u);  // scalar, sse2, neon, avx2, avx512, ...
  bool saw_scalar = false;
  for (const auto& s : support) {
    const std::string_view name = s.name;
    if (s.supported) EXPECT_TRUE(s.compiled) << name;
    if (name == "scalar") {
      saw_scalar = true;
      EXPECT_TRUE(s.compiled);
      EXPECT_TRUE(s.supported);
    }
    if (name == "popcount-simd") continue;  // engine datapath, not a kernel
    EXPECT_EQ(s.compiled && s.supported,
              nn::backends::kernel_by_name(name) != nullptr)
        << name;
  }
  EXPECT_TRUE(saw_scalar);
}

}  // namespace
}  // namespace scnn
