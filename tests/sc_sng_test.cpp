#include "sc/sng.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "sc/ed.hpp"
#include "sc/halton.hpp"

namespace scnn::sc {
namespace {

TEST(Halton, RadicalInverseBase2) {
  EXPECT_DOUBLE_EQ(radical_inverse(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(radical_inverse(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(radical_inverse(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(radical_inverse(3, 2), 0.75);
  EXPECT_DOUBLE_EQ(radical_inverse(4, 2), 0.125);
}

TEST(Halton, RadicalInverseBase3) {
  EXPECT_DOUBLE_EQ(radical_inverse(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(radical_inverse(1, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(radical_inverse(2, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(radical_inverse(3, 3), 1.0 / 9.0);
}

TEST(Halton, IntBase2MatchesDouble) {
  for (std::uint64_t i = 0; i < 256; ++i) {
    const auto vi = radical_inverse_base2_int(i, 8);
    EXPECT_DOUBLE_EQ(static_cast<double>(vi) / 256.0, radical_inverse(i, 2)) << i;
  }
}

// Every SNG must produce an *exactly* value-correct stream over its natural
// period for the deterministic kinds, and an unbiased one for the LFSR.
class SngValue : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(SngValue, FullPeriodStreamValue) {
  const auto [kind, n] = GetParam();
  auto sng = make_sng(kind, n);
  const std::size_t len = std::size_t{1} << n;
  for (std::uint32_t code : {0u, 1u, (1u << n) / 3, (1u << n) / 2, (1u << n) - 1}) {
    sng->reset();
    const auto stream = generate_stream(*sng, code, len);
    const double expected = static_cast<double>(code) / static_cast<double>(len);
    const double got = stream.unipolar_value();
    const std::string name(kind);
    if (name == "lfsr") {
      // LFSR states are uniform over [1, 2^n - 1]: P(state < code) =
      // (code - 1 + [code == 0]) / (2^n - 1); allow that inherent bias.
      EXPECT_NEAR(got, expected, 2.0 / static_cast<double>(len)) << kind << " code=" << code;
    } else if (name == "halton3") {
      // Base-3 sequence over a power-of-two window: low-discrepancy but not
      // exactly balanced; star discrepancy is O(log L / L).
      EXPECT_NEAR(got, expected, (2.0 + 2.0 * n) / static_cast<double>(len))
          << kind << " code=" << code;
    } else {
      // Halton base 2/3 and ED are exactly balanced over the period.
      EXPECT_NEAR(got, expected, 1.5 / static_cast<double>(len)) << kind << " code=" << code;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SngValue,
    ::testing::Combine(::testing::Values("lfsr", "halton2", "halton3", "ed", "ed*"),
                       ::testing::Values(5, 8, 10)));

TEST(EdCode, ExactPrefixBalance) {
  // The defining even-distribution property: every length-k prefix holds
  // floor or ceil of k*code/2^N ones.
  const int n = 8;
  for (std::uint32_t code : {0u, 3u, 77u, 128u, 255u}) {
    const auto s = ed_stream(code, n);
    for (std::size_t k = 1; k <= s.length(); ++k) {
      const double ideal = static_cast<double>(k) * code / 256.0;
      const auto ones = static_cast<double>(s.count_ones_prefix(k));
      EXPECT_LE(std::abs(ones - ideal), 1.0) << "code=" << code << " k=" << k;
    }
  }
}

TEST(EdCode, ScrambledPreservesValue) {
  const int n = 9;
  for (std::uint32_t code = 0; code < (1u << n); code += 37) {
    EXPECT_EQ(ed_stream(code, n).count_ones(), ed_stream_scrambled(code, n).count_ones());
  }
}

TEST(Sng, ResetRestartsSequence) {
  for (const char* kind : {"lfsr", "halton2", "halton3", "ed", "ed*"}) {
    auto sng = make_sng(kind, 6);
    const auto first = generate_stream(*sng, 21, 64);
    sng->reset();
    const auto again = generate_stream(*sng, 21, 64);
    for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(first.get(i), again.get(i)) << kind;
  }
}

TEST(Sng, UnknownKindThrows) { EXPECT_THROW(make_sng("bogus", 5), std::invalid_argument); }

TEST(Sng, LfsrVariantsDiffer) {
  auto a = make_sng("lfsr", 8, 0);
  auto b = make_sng("lfsr", 8, 1);
  const auto sa = generate_stream(*a, 100, 256);
  const auto sb = generate_stream(*b, 100, 256);
  bool any_diff = false;
  for (std::size_t i = 0; i < 256 && !any_diff; ++i) any_diff = sa.get(i) != sb.get(i);
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace scnn::sc
