#include <gtest/gtest.h>

#include <vector>

#include "accel/accelerator.hpp"
#include "accel/buffers.hpp"
#include "common/rng.hpp"

namespace scnn::accel {
namespace {

const core::ConvDims kDims{.M = 16, .Z = 8, .H = 14, .W = 14, .K = 3, .S = 1, .P = 1};
const core::Tiling kTiling{.tm = 4, .tr = 4, .tc = 4};

std::vector<std::int32_t> small_weights(const core::ConvDims& d, int n_bits,
                                        std::uint64_t seed) {
  common::SplitMix64 rng(seed);
  std::vector<std::int32_t> w(static_cast<std::size_t>(d.M) * d.Z * d.K * d.K);
  const std::int32_t half = 1 << (n_bits - 1);
  for (auto& q : w)
    q = static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(half) / 2)) -
        half / 4;
  return w;
}

TEST(Buffers, SpecMatchesHandComputation) {
  const auto s = buffer_spec(kDims, kTiling, /*double_buffered=*/false);
  // Input window: 8 maps x ((4-1)*1+3)^2 = 8 * 36 = 288 words.
  EXPECT_EQ(s.input_words, 288u);
  EXPECT_EQ(s.output_words, 4u * 4 * 4);
  EXPECT_EQ(s.weight_words, 4u * 8 * 9);
  EXPECT_EQ(s.total_words(), 288u + 64 + 288);
  const auto d = buffer_spec(kDims, kTiling, true);
  EXPECT_EQ(d.total_words(), 2 * s.total_words());
}

TEST(Buffers, BytesScaleWithPrecision) {
  const auto s = buffer_spec(kDims, kTiling);
  EXPECT_EQ(s.total_bytes(8), s.total_words());
  EXPECT_EQ(s.total_bytes(16), 2 * s.total_words());
  // 5-bit words pack: ceil(words*5/8).
  EXPECT_EQ(s.total_bytes(5), (s.total_words() * 5 + 7) / 8);
}

TEST(Buffers, ParityAcrossArithmetics) {
  // Sec. 3.3: buffer sizes are identical for SC and binary — the spec is a
  // function of geometry only. (The API enforces this by construction; this
  // test documents the claim.)
  const auto a = buffer_spec(kDims, kTiling);
  const auto b = buffer_spec(kDims, kTiling);
  EXPECT_EQ(a.total_words(), b.total_words());
}

TEST(Buffers, TileCount) {
  // M/tm = 4, R/tr = ceil(14/4) = 4, C/tc = 4 -> 64 tiles.
  EXPECT_EQ(tile_count(kDims, kTiling), 64u);
}

TEST(Accelerator, ComputeBoundVsMemoryBound) {
  LayerWorkload layer{.name = "conv", .dims = kDims,
                      .weight_codes = small_weights(kDims, 8, 5)};
  AcceleratorConfig cfg;
  cfg.tiling = kTiling;
  cfg.n_bits = 8;
  cfg.arithmetic = hw::MacKind::kProposedSerial;
  cfg.bit_parallel = 1;

  cfg.dram_bytes_per_cycle = 1024.0;  // effectively infinite bandwidth
  const auto fast = simulate_network(cfg, std::vector<LayerWorkload>{layer});
  EXPECT_EQ(fast.layers[0].stall_cycles, 0u);

  cfg.dram_bytes_per_cycle = 0.25;  // starved
  const auto slow = simulate_network(cfg, std::vector<LayerWorkload>{layer});
  EXPECT_GT(slow.layers[0].stall_cycles, 0u);
  EXPECT_GT(slow.total_cycles, fast.total_cycles);
}

TEST(Accelerator, FasterArithmeticNeedsMoreBandwidth) {
  // The conclusion's warning in numbers: at the same modest bandwidth, the
  // proposed low-latency array stalls while slow conventional SC does not.
  LayerWorkload layer{.name = "conv", .dims = kDims,
                      .weight_codes = small_weights(kDims, 8, 6)};
  AcceleratorConfig cfg;
  cfg.tiling = kTiling;
  cfg.n_bits = 8;
  cfg.dram_bytes_per_cycle = 1.0;

  cfg.arithmetic = hw::MacKind::kConvScLfsr;
  const auto conv = simulate_network(cfg, std::vector<LayerWorkload>{layer});
  cfg.arithmetic = hw::MacKind::kProposedParallel;
  cfg.bit_parallel = 8;
  const auto ours = simulate_network(cfg, std::vector<LayerWorkload>{layer});

  EXPECT_EQ(conv.layers[0].stall_cycles, 0u);  // 256 cyc/MAC hides any DMA
  EXPECT_GT(ours.layers[0].stall_cycles, 0u);  // fast MACs outrun the DMA
  EXPECT_LT(ours.total_cycles, conv.total_cycles);  // still far faster overall
}

TEST(Accelerator, EnergySplitsIntoComputeAndMemory) {
  LayerWorkload layer{.name = "conv", .dims = kDims,
                      .weight_codes = small_weights(kDims, 8, 7)};
  AcceleratorConfig cfg;
  cfg.tiling = kTiling;
  cfg.n_bits = 8;
  cfg.arithmetic = hw::MacKind::kProposedParallel;
  const auto rep = simulate_network(cfg, std::vector<LayerWorkload>{layer});
  EXPECT_GT(rep.layers[0].compute_energy_nj, 0.0);
  EXPECT_GT(rep.layers[0].memory_energy_nj, 0.0);
  EXPECT_NEAR(rep.total_energy_nj,
              rep.layers[0].compute_energy_nj + rep.layers[0].memory_energy_nj, 1e-9);
  EXPECT_GT(rep.images_per_second, 0.0);
}

TEST(Accelerator, MultiLayerTotalsAccumulate) {
  LayerWorkload l1{.name = "c1", .dims = kDims, .weight_codes = small_weights(kDims, 8, 8)};
  core::ConvDims d2 = kDims;
  d2.Z = 16;
  d2.M = 8;
  LayerWorkload l2{.name = "c2", .dims = d2, .weight_codes = small_weights(d2, 8, 9)};
  AcceleratorConfig cfg;
  cfg.tiling = kTiling;
  cfg.n_bits = 8;
  const auto rep = simulate_network(cfg, std::vector<LayerWorkload>{l1, l2});
  ASSERT_EQ(rep.layers.size(), 2u);
  EXPECT_EQ(rep.total_cycles, rep.layers[0].total_cycles + rep.layers[1].total_cycles);
}

TEST(Accelerator, RejectsZeroBandwidth) {
  AcceleratorConfig cfg;
  cfg.dram_bytes_per_cycle = 0.0;
  LayerWorkload layer{.name = "c", .dims = kDims,
                      .weight_codes = small_weights(kDims, 8, 10)};
  EXPECT_THROW(simulate_network(cfg, std::vector<LayerWorkload>{layer}),
               std::invalid_argument);
}

}  // namespace
}  // namespace scnn::accel
