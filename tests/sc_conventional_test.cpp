#include "sc/conventional.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/fixed_point.hpp"

namespace scnn::sc {
namespace {

TEST(Conventional, UnipolarConvergesToProduct) {
  const int n = 10;
  auto sx = make_sng("lfsr", n, 0);
  auto sw = make_sng("lfsr", n, 1);
  // x = 0.75, w = 0.5 -> 0.375
  const auto r = unipolar_multiply(n, 768, 512, *sx, *sw);
  EXPECT_NEAR(r.final_estimate, 0.375, 0.02);
}

TEST(Conventional, BipolarConvergesToProduct) {
  const int n = 10;
  auto sx = make_sng("lfsr", n, 0);
  auto sw = make_sng("lfsr", n, 1);
  // x = -0.5, w = 0.75 -> -0.375 (codes scaled by 2^(n-1) = 512)
  const auto r = bipolar_multiply(n, -256, 384, *sx, *sw);
  EXPECT_NEAR(r.final_estimate, -0.375, 0.05);
}

TEST(Conventional, HaltonIsMoreAccurateThanLfsr) {
  // The headline of the paper's Fig. 5(a)/(b): among conventional SNGs the
  // Halton pair (bases 2 and 3) beats the LFSR pair. Compare RMS error over
  // a grid of inputs.
  const int n = 8;
  const std::int32_t half = 1 << (n - 1);
  double se_lfsr = 0, se_halton = 0;
  int count = 0;
  for (std::int32_t qx = -half; qx < half; qx += 17) {
    for (std::int32_t qw = -half; qw < half; qw += 13) {
      const double exact = common::dequantize(qx, n) * common::dequantize(qw, n);
      {
        auto sx = make_sng("lfsr", n, 0);
        auto sw = make_sng("lfsr", n, 1);
        const double e = bipolar_multiply(n, qx, qw, *sx, *sw).final_estimate - exact;
        se_lfsr += e * e;
      }
      {
        auto sx = make_sng("halton2", n);
        auto sw = make_sng("halton3", n);
        const double e = bipolar_multiply(n, qx, qw, *sx, *sw).final_estimate - exact;
        se_halton += e * e;
      }
      ++count;
    }
  }
  EXPECT_LT(std::sqrt(se_halton / count), std::sqrt(se_lfsr / count));
}

TEST(Conventional, TraceEndsAtFinalEstimate) {
  const int n = 6;
  auto sx = make_sng("halton2", n);
  auto sw = make_sng("halton3", n);
  const auto r = bipolar_multiply(n, 20, -11, *sx, *sw, /*want_trace=*/true);
  ASSERT_EQ(r.estimate_at_pow2.size(), static_cast<std::size_t>(n) + 1);
  EXPECT_DOUBLE_EQ(r.estimate_at_pow2.back(), r.final_estimate);
}

TEST(StreamBank, StreamsMatchFreshSng) {
  const int n = 6;
  StreamBank bank("halton2", n);
  auto sng = make_sng("halton2", n);
  for (std::uint32_t code : {0u, 9u, 33u, 63u}) {
    sng->reset();
    const auto fresh = generate_stream(*sng, code, bank.stream_length());
    const auto& cached = bank.unsigned_stream(code);
    for (std::size_t i = 0; i < fresh.length(); ++i)
      ASSERT_EQ(fresh.get(i), cached.get(i)) << "code=" << code << " i=" << i;
  }
}

TEST(StreamBank, SignedIndexingUsesOffsetBinary) {
  const int n = 5;
  StreamBank bank("lfsr", n);
  // signed code q maps to unsigned code q + 16.
  EXPECT_EQ(&bank.signed_stream(0), &bank.unsigned_stream(16));
  EXPECT_EQ(&bank.signed_stream(-16), &bank.unsigned_stream(0));
  EXPECT_EQ(&bank.signed_stream(15), &bank.unsigned_stream(31));
}

TEST(StreamBank, PrefixEstimatesMatchSerialMultiply) {
  const int n = 6;
  StreamBank bx("lfsr", n, 0), bw("lfsr", n, 1);
  auto sx = make_sng("lfsr", n, 0);
  auto sw = make_sng("lfsr", n, 1);
  const std::int32_t qx = 13, qw = -22;
  const auto serial = bipolar_multiply(n, qx, qw, *sx, *sw, /*want_trace=*/true);
  const auto& stream_x = bx.signed_stream(qx);
  const auto& stream_w = bw.signed_stream(qw);
  for (int x = 0; x <= n; ++x) {
    const std::size_t cycles = std::size_t{1} << x;
    EXPECT_DOUBLE_EQ(bipolar_estimate_prefix(stream_x, stream_w, cycles),
                     serial.estimate_at_pow2[static_cast<std::size_t>(x)])
        << "cycles=" << cycles;
  }
}

TEST(StreamBank, UnipolarPrefixEstimateMatchesDirectCount) {
  const int n = 7;
  StreamBank bx("halton2", n), bw("halton3", n);
  const auto& a = bx.unsigned_stream(100);
  const auto& b = bw.unsigned_stream(50);
  const auto full = a.and_with(b);
  for (std::size_t c : {1u, 2u, 31u, 64u, 128u}) {
    EXPECT_DOUBLE_EQ(unipolar_estimate_prefix(a, b, c),
                     static_cast<double>(full.count_ones_prefix(c)) / static_cast<double>(c));
  }
}

}  // namespace
}  // namespace scnn::sc
