#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace scnn::common {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i)
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  pool.run_batch(std::move(tasks));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTaskBatchIsANoOp) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.run_batch({}));
}

TEST(ThreadPool, SubmitFutureObservesCompletion) {
  ThreadPool pool(2);
  std::atomic<int> v{0};
  auto fut = pool.submit([&v] { v.store(42); });
  fut.get();
  EXPECT_EQ(v.load(), 42);
}

TEST(ThreadPool, PropagatesLowestIndexedException) {
  ThreadPool pool(3);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("first failure"); });
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("second failure"); });
  try {
    pool.run_batch(std::move(tasks));
    FAIL() << "expected run_batch to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first failure");
  }
}

TEST(ThreadPool, AutoSizeUsesAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(101);
  parallel_for(&pool, static_cast<std::int64_t>(hits.size()),
               [&](std::int64_t lo, std::int64_t hi, int) {
                 for (std::int64_t i = lo; i < hi; ++i)
                   hits[static_cast<std::size_t>(i)].fetch_add(1);
               });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ShardLayoutIsDeterministic) {
  // Shard boundaries must depend only on (count, shard count) — this is
  // what keeps per-shard counters mergeable in a fixed order.
  ThreadPool pool(4);
  const std::int64_t count = 10;
  ASSERT_EQ(parallel_shard_count(&pool, count), 4);
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges(4);
  parallel_for(&pool, count, [&](std::int64_t lo, std::int64_t hi, int shard) {
    ranges[static_cast<std::size_t>(shard)] = {lo, hi};
  });
  // 10 items over 4 shards: 3, 3, 2, 2.
  const std::vector<std::pair<std::int64_t, std::int64_t>> expected = {
      {0, 3}, {3, 6}, {6, 8}, {8, 10}};
  EXPECT_EQ(ranges, expected);
}

TEST(ParallelFor, NullPoolRunsInline) {
  int calls = 0;
  parallel_for(nullptr, 7, [&](std::int64_t lo, std::int64_t hi, int shard) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 7);
    EXPECT_EQ(shard, 0);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, ZeroCountCallsNothing) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(&pool, 0, [&](std::int64_t, std::int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(parallel_shard_count(&pool, 0), 0);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 100,
                   [](std::int64_t lo, std::int64_t, int) {
                     if (lo == 0) throw std::invalid_argument("shard 0 failed");
                   }),
      std::invalid_argument);
}

}  // namespace
}  // namespace scnn::common
