// ServerOptions / TenantOptions JSON round-tripping — the config-file face
// of a multi-tenant deployment (`scnn_cli serve --tenants=FILE`). Mirrors
// nn_engine_config_test: to_json -> from_json is the identity, and every
// parse / validation error names the offending token or field.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "serve/model_registry.hpp"
#include "serve/server.hpp"

namespace scnn::serve {
namespace {

using scnn::nn::EngineConfig;
using scnn::nn::EngineKind;

template <typename T>
void expect_parse_error(const char* json, const char* needle) {
  try {
    (void)T::from_json(json);
    FAIL() << "expected invalid_argument mentioning \"" << needle
           << "\" for: " << json;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(TenantOptionsJson, DefaultRoundTripsExactly) {
  const TenantOptions opts;
  const TenantOptions round = TenantOptions::from_json(opts.to_json());
  EXPECT_EQ(round.to_json(), opts.to_json());
  EXPECT_EQ(round.name, "default");
  EXPECT_EQ(round.checkpoint, "");
  EXPECT_EQ(round.shards, 0);
  EXPECT_FALSE(round.engine.has_value());
}

TEST(TenantOptionsJson, PopulatedRoundTripsExactly) {
  TenantOptions opts;
  opts.name = "vision-v2";
  opts.checkpoint = "ckpt/vision_v2.scnn";
  opts.shards = 3;
  opts.engine = EngineConfig{.kind = EngineKind::kProposed, .n_bits = 10};
  const TenantOptions round = TenantOptions::from_json(opts.to_json());
  EXPECT_EQ(round.to_json(), opts.to_json());
  EXPECT_EQ(round.name, "vision-v2");
  EXPECT_EQ(round.checkpoint, "ckpt/vision_v2.scnn");
  EXPECT_EQ(round.shards, 3);
  ASSERT_TRUE(round.engine.has_value());
  EXPECT_EQ(round.engine->n_bits, 10);
  EXPECT_EQ(round.engine->kind, EngineKind::kProposed);
}

TEST(TenantOptionsJson, ParseErrorsNameTheOffendingToken) {
  expect_parse_error<TenantOptions>("{\"bogus\":1}", "unknown key \"bogus\"");
  expect_parse_error<TenantOptions>("{\"name\":\"a\"", "unexpected end");
  expect_parse_error<TenantOptions>("{\"shards\":\"x\"}", "expected an integer");
  expect_parse_error<TenantOptions>("{\"name\":\"a\"}trail", "trailing");
  // Nested engine errors surface with EngineConfig's own token naming.
  expect_parse_error<TenantOptions>("{\"engine\":{\"nope\":1}}", "nope");
}

TEST(TenantOptionsJson, ValidateNamesTheOffendingField) {
  const auto expect_invalid = [](TenantOptions opts, const char* needle) {
    try {
      opts.validate();
      FAIL() << "expected invalid_argument mentioning " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  TenantOptions opts;
  opts.name = "";
  expect_invalid(opts, "name must not be empty");
  opts = TenantOptions{};
  opts.name = "has space";
  expect_invalid(opts, "has space");
  opts = TenantOptions{};
  opts.name = std::string(40, 'a');
  expect_invalid(opts, "longer than 32");
  opts = TenantOptions{};
  opts.name = "batch";  // collides with the serve.batch.* metric namespace
  expect_invalid(opts, "reserved");
  opts = TenantOptions{};
  opts.shards = -1;
  expect_invalid(opts, "shards = -1");
  opts = TenantOptions{};
  opts.shards = TenantOptions::kMaxShards + 1;
  expect_invalid(opts, "shards = 257");
  opts = TenantOptions{};
  opts.engine = EngineConfig{.n_bits = 99};
  expect_invalid(opts, "n_bits = 99");
}

TEST(ServerOptionsJson, DefaultRoundTripsExactly) {
  const ServerOptions opts;
  const ServerOptions round = ServerOptions::from_json(opts.to_json());
  EXPECT_EQ(round.to_json(), opts.to_json());
  EXPECT_EQ(round.workers, opts.workers);
  EXPECT_EQ(round.queue_kind, QueueKind::kLockFree);
  EXPECT_TRUE(round.tenants.empty());
  EXPECT_FALSE(round.engine.has_value());
}

TEST(ServerOptionsJson, MultiTenantDeploymentRoundTripsExactly) {
  ServerOptions opts;
  opts.workers = 4;
  opts.session_threads = 2;
  opts.max_batch = 16;
  opts.max_delay_us = 250;
  opts.queue_capacity = 512;
  opts.queue_kind = QueueKind::kMutex;
  opts.default_deadline_us = 50'000;
  opts.start_paused = true;
  opts.trace = true;
  opts.flight_recorder = false;
  opts.flight_capacity = 1024;
  opts.reject_burst = 8;
  opts.flight_dump_prefix = "deploy_flight";
  opts.engine = EngineConfig{.kind = EngineKind::kProposed, .n_bits = 8};
  TenantOptions alpha;
  alpha.name = "alpha";
  alpha.checkpoint = "ckpt/alpha.scnn";
  TenantOptions beta;
  beta.name = "beta";
  beta.shards = 2;
  beta.engine = EngineConfig{.kind = EngineKind::kFixed, .n_bits = 12};
  opts.tenants = {alpha, beta};
  opts.validate();

  const ServerOptions round = ServerOptions::from_json(opts.to_json());
  EXPECT_EQ(round.to_json(), opts.to_json());
  EXPECT_EQ(round.workers, 4);
  EXPECT_EQ(round.queue_kind, QueueKind::kMutex);
  EXPECT_EQ(round.flight_dump_prefix, "deploy_flight");
  ASSERT_TRUE(round.engine.has_value());
  EXPECT_EQ(round.engine->n_bits, 8);
  ASSERT_EQ(round.tenants.size(), 2u);
  EXPECT_EQ(round.tenants[0].name, "alpha");
  EXPECT_EQ(round.tenants[0].checkpoint, "ckpt/alpha.scnn");
  EXPECT_EQ(round.tenants[1].name, "beta");
  EXPECT_EQ(round.tenants[1].shards, 2);
  ASSERT_TRUE(round.tenants[1].engine.has_value());
  EXPECT_EQ(round.tenants[1].engine->n_bits, 12);
  EXPECT_FALSE(round.tenants[0].engine.has_value())
      << "a tenant without its own engine must stay inheriting the default";
}

TEST(ServerOptionsJson, ParseErrorsNameTheOffendingToken) {
  expect_parse_error<ServerOptions>("not json", "expected '{'");
  expect_parse_error<ServerOptions>("{\"bogus\":1}", "unknown key \"bogus\"");
  expect_parse_error<ServerOptions>("{\"workers\":\"two\"}",
                                    "expected an integer");
  expect_parse_error<ServerOptions>("{\"queue_kind\":\"stack\"}", "stack");
  expect_parse_error<ServerOptions>("{\"start_paused\":maybe}",
                                    "expected true or false");
  expect_parse_error<ServerOptions>("{\"tenants\":[{\"name\":\"a\"}",
                                    "unexpected end");
  expect_parse_error<ServerOptions>("{\"tenants\":[{\"shards\":true}]}",
                                    "expected an integer");
  expect_parse_error<ServerOptions>("{\"workers\":1}x", "trailing");
}

TEST(ServerOptionsJson, ValidateCatchesDuplicateAndReservedTenantNames) {
  ServerOptions opts;
  TenantOptions a;
  a.name = "same";
  opts.tenants = {a, a};
  try {
    opts.validate();
    FAIL() << "expected invalid_argument for the duplicate tenant name";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate name \"same\""),
              std::string::npos)
        << e.what();
  }
  opts.tenants.clear();
  TenantOptions reserved;
  reserved.name = "queue_depth";
  opts.tenants = {reserved};
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace scnn::serve
