#include "hw/array_model.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scnn::hw {
namespace {

TEST(ArrayModel, SharingShrinksProposedArray) {
  // 256 proposed MACs share one FSM + one down counter: array area must be
  // far below 256 * standalone-MAC area.
  const int p = 256;
  const auto arr = array_cost(MacKind::kProposedSerial, 9, p);
  const double standalone = mac_breakdown(MacKind::kProposedSerial, 9).total().area_um2;
  EXPECT_LT(arr.total.area_um2, 0.85 * p * standalone);
  // Fixed-point shares nothing: array = p * MAC exactly.
  const auto fix = array_cost(MacKind::kFixedPoint, 9, p);
  const double fix_mac = mac_breakdown(MacKind::kFixedPoint, 9).total().area_um2;
  EXPECT_NEAR(fix.total.area_um2, p * fix_mac, 1e-6);
}

TEST(ArrayModel, Table3ProposedAnchors) {
  // Paper Table 3, "Proposed (9b-precision)": 256-MAC 8b-parallel array at
  // 1 GHz: area 0.06 mm^2, power ~25 mW, ~352 GOPS at the CIFAR-10 weight
  // distribution (avg enable ~ 11.6 cycles).
  const auto m = array_metrics(MacKind::kProposedParallel, 9, 256, /*avg_enable=*/11.6, 2,
                               /*bit_parallel=*/8);
  EXPECT_NEAR(m.area_mm2, 0.06, 0.06 * 0.35);
  EXPECT_NEAR(m.power_mw, 25.06, 25.06 * 0.35);
  EXPECT_NEAR(m.gops, 351.55, 351.55 * 0.35);
  EXPECT_GT(m.gops_per_mm2, 4000.0);   // paper: 6242
  EXPECT_GT(m.gops_per_watt, 10000.0); // paper: 14030
}

TEST(ArrayModel, EnergyRatiosMatchPaperShape) {
  // Sec. 4.3.2: ours is 300x~490x more energy-efficient than conventional SC
  // at CIFAR-10 precision, and ~1.2-1.4x better than fixed-point binary.
  const int p = 256, n = 9;
  const double avg_enable = 11.6;
  const auto ours = array_metrics(MacKind::kProposedParallel, n, p, avg_enable, 2, 8);
  const auto conv = array_metrics(MacKind::kConvScLfsr, n, p, avg_enable);
  const auto fix = array_metrics(MacKind::kFixedPoint, n, p, avg_enable);
  const double vs_conv = conv.energy_per_gop_mj / ours.energy_per_gop_mj;
  EXPECT_GT(vs_conv, 100.0);
  EXPECT_LT(vs_conv, 1000.0);
  const double vs_fix = fix.energy_per_gop_mj / ours.energy_per_gop_mj;
  EXPECT_GT(vs_fix, 1.0);   // ours beats binary on energy
  EXPECT_LT(vs_fix, 2.0);   // but only by tens of percent (paper: 23~29%)
}

TEST(ArrayModel, AdpBeatsFixedPoint) {
  // Sec. 4.3.1: 29~44% lower ADP than the same-accuracy fixed-point design.
  const auto ours = array_metrics(MacKind::kProposedParallel, 9, 256, 11.6, 2, 8);
  const auto fix = array_metrics(MacKind::kFixedPoint, 9, 256, 11.6);
  EXPECT_LT(ours.adp, fix.adp);
  const double reduction = 1.0 - ours.adp / fix.adp;
  EXPECT_GT(reduction, 0.15);
  EXPECT_LT(reduction, 0.60);
}

TEST(ArrayModel, ConvScPowerComparableToBinary) {
  // Sec. 4.3.2: despite smaller area, conventional SC's LFSR power makes it
  // "about as high power-dissipating as the binary case".
  const auto conv = array_metrics(MacKind::kConvScLfsr, 9, 256, 11.6);
  const auto fix = array_metrics(MacKind::kFixedPoint, 9, 256, 11.6);
  EXPECT_GT(conv.power_mw, 0.6 * fix.power_mw);
  EXPECT_LT(conv.power_mw, 1.6 * fix.power_mw);
}

TEST(ArrayModel, AverageEnableCycles) {
  const std::vector<std::int32_t> w = {0, 1, -1, 4, -4, 10};
  EXPECT_DOUBLE_EQ(average_enable_cycles(w), 20.0 / 6.0);
  EXPECT_DOUBLE_EQ(average_enable_cycles(std::vector<std::int32_t>{}), 0.0);
}

TEST(ArrayModel, GopsScalesWithArraySizeAndFrequency) {
  const auto a = array_metrics(MacKind::kFixedPoint, 8, 128, 1.0);
  const auto b = array_metrics(MacKind::kFixedPoint, 8, 256, 1.0);
  EXPECT_NEAR(b.gops, 2.0 * a.gops, 1e-9);
  const auto c = array_metrics(MacKind::kFixedPoint, 8, 128, 1.0, 2, 1, 0.5);
  EXPECT_NEAR(c.gops, 0.5 * a.gops, 1e-9);
}

TEST(ArrayModel, BitSerialLatencySuppressedByParallelism) {
  // Fig. 7 "Ours-8": the bit-parallel version suppresses the 7.7-cycle
  // bit-serial latency to ~1-2 cycles.
  const auto serial = array_metrics(MacKind::kProposedSerial, 9, 256, 11.6);
  const auto par = array_metrics(MacKind::kProposedParallel, 9, 256, 11.6, 2, 8);
  EXPECT_GT(serial.cycles_per_mac, 5.0 * par.cycles_per_mac);
}

TEST(ArrayModel, LfsrPowerSensitivity) {
  // The conv-SC-vs-ours energy ratio must be monotone in the LFSR power
  // factor, match the default-model ratio at the default factor, and remain
  // enormous even if LFSRs burned no extra power at all (factor = 1):
  // the latency gap, not the power assumption, carries the conclusion.
  const int n = 9, p = 256;
  const double avg = 11.6;
  const double at_default =
      energy_ratio_vs_lfsr_power(n, p, avg, tech().lfsr_power_factor);
  const auto conv = array_metrics(MacKind::kConvScLfsr, n, p, avg);
  const auto ours = array_metrics(MacKind::kProposedParallel, n, p, avg, 2, 8);
  EXPECT_NEAR(at_default, conv.energy_per_gop_mj / ours.energy_per_gop_mj,
              at_default * 1e-6);
  const double at_one = energy_ratio_vs_lfsr_power(n, p, avg, 1.0);
  const double at_five = energy_ratio_vs_lfsr_power(n, p, avg, 5.0);
  EXPECT_LT(at_one, at_default);
  EXPECT_GT(at_five, at_default);
  EXPECT_GT(at_one, 100.0);
}

TEST(ArrayModel, TotalsMonotoneInPrecision) {
  for (int n = 5; n < 10; ++n) {
    for (const auto kind : {MacKind::kFixedPoint, MacKind::kConvScLfsr,
                            MacKind::kProposedSerial}) {
      EXPECT_LT(array_cost(kind, n, 64).total.area_um2,
                array_cost(kind, n + 1, 64).total.area_um2)
          << mac_kind_name(kind) << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace scnn::hw
