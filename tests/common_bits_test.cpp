#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace scnn::common {
namespace {

TEST(Bits, TrailingZeros) {
  EXPECT_EQ(trailing_zeros(1), 0);
  EXPECT_EQ(trailing_zeros(8), 3);
  EXPECT_EQ(trailing_zeros(12), 2);
  EXPECT_EQ(trailing_zeros(std::uint64_t{1} << 63), 63);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(std::uint64_t{1} << 40));
  EXPECT_FALSE(is_pow2((std::uint64_t{1} << 40) + 1));
}

TEST(Bits, FloorCeilLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Bits, RoundDivPow2HalfUp) {
  // round(k / 2^i) with ties up: the count theorem of the paper's Sec. 2.3
  // depends on this exact tie-breaking.
  EXPECT_EQ(round_div_pow2(7, 1), 4u);   // 3.5 -> 4
  EXPECT_EQ(round_div_pow2(7, 2), 2u);   // 1.75 -> 2
  EXPECT_EQ(round_div_pow2(7, 3), 1u);   // 0.875 -> 1
  EXPECT_EQ(round_div_pow2(7, 4), 0u);   // 0.4375 -> 0
  EXPECT_EQ(round_div_pow2(8, 4), 1u);   // 0.5 -> 1 (tie up)
  EXPECT_EQ(round_div_pow2(0, 5), 0u);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b0001, 4), 0b1000u);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101u);
  EXPECT_EQ(reverse_bits(0, 10), 0u);
  // Involution: reversing twice is the identity.
  for (std::uint64_t v = 0; v < 64; ++v) EXPECT_EQ(reverse_bits(reverse_bits(v, 6), 6), v);
}

TEST(Bits, RulerSequence) {
  // 0,1,0,2,0,1,0,3,... (OEIS A007814)
  const int expected[] = {0, 1, 0, 2, 0, 1, 0, 3, 0, 1, 0, 2, 0, 1, 0, 4};
  for (std::uint64_t t = 1; t <= 16; ++t) EXPECT_EQ(ruler(t), expected[t - 1]) << "t=" << t;
}

// Property: reverse_bits maps each aligned block of 2^n indices onto a
// permutation of [0, 2^n) — the van-der-Corput base-2 property used by the
// ED scrambler and the Halton base-2 SNG.
class ReversePermutation : public ::testing::TestWithParam<int> {};

TEST_P(ReversePermutation, BlockIsPermutation) {
  const int n = GetParam();
  std::vector<bool> seen(std::size_t{1} << n, false);
  for (std::uint64_t i = 0; i < (std::uint64_t{1} << n); ++i) {
    const auto r = reverse_bits(i, n);
    ASSERT_LT(r, std::uint64_t{1} << n);
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ReversePermutation, ::testing::Values(1, 2, 3, 5, 8, 10, 12));

}  // namespace
}  // namespace scnn::common
