#include "data/image_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace scnn::data {
namespace {

namespace fs = std::filesystem;

class ImageIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "scnn_img_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path(const char* name) { return (dir_ / name).string(); }
  fs::path dir_;
};

std::string read_all(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST_F(ImageIoTest, WritesPgmForSingleChannel) {
  nn::Tensor t(2, 1, 2, 3);
  t.at(1, 0, 0, 0) = 1.0f;
  t.at(1, 0, 1, 2) = 0.5f;
  write_image(t, 1, path("a.pgm"));
  const std::string data = read_all(path("a.pgm"));
  EXPECT_EQ(data.substr(0, 2), "P5");
  EXPECT_NE(data.find("3 2"), std::string::npos);
  // 6 pixel bytes after the header.
  const auto header_end = data.find("255\n") + 4;
  ASSERT_EQ(data.size() - header_end, 6u);
  EXPECT_EQ(static_cast<unsigned char>(data[header_end]), 255);     // (0,0)
  EXPECT_EQ(static_cast<unsigned char>(data[header_end + 5]), 128); // (1,2)
}

TEST_F(ImageIoTest, WritesPpmForThreeChannels) {
  nn::Tensor t(1, 3, 2, 2);
  t.at(0, 0, 0, 0) = 1.0f;  // red at (0,0)
  write_image(t, 0, path("a.ppm"));
  const std::string data = read_all(path("a.ppm"));
  EXPECT_EQ(data.substr(0, 2), "P6");
  const auto header_end = data.find("255\n") + 4;
  ASSERT_EQ(data.size() - header_end, 12u);
  EXPECT_EQ(static_cast<unsigned char>(data[header_end]), 255);      // R
  EXPECT_EQ(static_cast<unsigned char>(data[header_end + 1]), 0);    // G
}

TEST_F(ImageIoTest, ValuesAreClamped) {
  nn::Tensor t(1, 1, 1, 2);
  t[0] = -5.0f;
  t[1] = 7.0f;
  write_image(t, 0, path("c.pgm"));
  const std::string data = read_all(path("c.pgm"));
  const auto header_end = data.find("255\n") + 4;
  EXPECT_EQ(static_cast<unsigned char>(data[header_end]), 0);
  EXPECT_EQ(static_cast<unsigned char>(data[header_end + 1]), 255);
}

TEST_F(ImageIoTest, ContactSheetGeometry) {
  nn::Tensor t(6, 1, 4, 5);
  write_contact_sheet(t, 2, 3, path("s.pgm"));
  const std::string data = read_all(path("s.pgm"));
  EXPECT_NE(data.find("15 8"), std::string::npos);  // 3*5 x 2*4
}

TEST_F(ImageIoTest, RejectsBadArguments) {
  nn::Tensor two_ch(1, 2, 2, 2);
  EXPECT_THROW(write_image(two_ch, 0, path("x.pgm")), std::invalid_argument);
  nn::Tensor ok(2, 1, 2, 2);
  EXPECT_THROW(write_image(ok, 5, path("x.pgm")), std::invalid_argument);
  EXPECT_THROW(write_contact_sheet(ok, 2, 2, path("x.pgm")), std::invalid_argument);
}

}  // namespace
}  // namespace scnn::data
