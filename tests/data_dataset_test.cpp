#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/idx_loader.hpp"
#include "data/synthetic_digits.hpp"
#include "data/synthetic_objects.hpp"

namespace scnn::data {
namespace {

TEST(SyntheticDigits, ShapeRangeAndDeterminism) {
  const auto d = make_synthetic_digits({.count = 50, .seed = 7});
  EXPECT_EQ(d.size(), 50);
  EXPECT_EQ(d.images.c(), 1);
  EXPECT_EQ(d.images.h(), 28);
  for (std::size_t i = 0; i < d.images.size(); ++i) {
    ASSERT_GE(d.images[i], 0.0f);
    ASSERT_LE(d.images[i], 1.0f);
  }
  const auto d2 = make_synthetic_digits({.count = 50, .seed = 7});
  for (std::size_t i = 0; i < d.images.size(); ++i) ASSERT_EQ(d.images[i], d2.images[i]);
  const auto d3 = make_synthetic_digits({.count = 50, .seed = 8});
  bool differs = false;
  for (std::size_t i = 0; i < d.images.size() && !differs; ++i)
    differs = d.images[i] != d3.images[i];
  EXPECT_TRUE(differs);
}

TEST(SyntheticDigits, GlyphsHaveInk) {
  const auto d = make_synthetic_digits({.count = 30, .seed = 9, .noise_stddev = 0.0f});
  for (int n = 0; n < d.size(); ++n) {
    double ink = 0;
    for (float v : d.images.sample(n)) ink += v;
    EXPECT_GT(ink, 10.0) << "glyph " << n << " is blank";
    EXPECT_LT(ink, 28 * 28 * 0.6) << "glyph " << n << " is saturated";
  }
}

TEST(SyntheticDigits, ClassesRoughlyBalanced) {
  const auto d = make_synthetic_digits({.count = 1000, .seed = 11});
  const auto h = class_histogram(d);
  for (int c = 0; c < 10; ++c) {
    EXPECT_GT(h[static_cast<std::size_t>(c)], 50) << c;
    EXPECT_LT(h[static_cast<std::size_t>(c)], 200) << c;
  }
}

TEST(SyntheticObjects, ShapeRangeAndBalance) {
  const auto d = make_synthetic_objects({.count = 400, .seed = 12});
  EXPECT_EQ(d.images.c(), 3);
  EXPECT_EQ(d.images.h(), 32);
  for (std::size_t i = 0; i < d.images.size(); ++i) {
    ASSERT_GE(d.images[i], 0.0f);
    ASSERT_LE(d.images[i], 1.0f);
  }
  const auto h = class_histogram(d);
  for (int c = 0; c < 10; ++c) EXPECT_GT(h[static_cast<std::size_t>(c)], 10) << c;
}

TEST(DatasetOps, TakeAndShuffle) {
  const auto d = make_synthetic_digits({.count = 100, .seed = 13});
  const auto t = take(d, 30);
  EXPECT_EQ(t.size(), 30);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(t.labels[static_cast<std::size_t>(i)],
                                         d.labels[static_cast<std::size_t>(i)]);
  const auto s = shuffled(d, 14);
  EXPECT_EQ(s.size(), d.size());
  // Same multiset of labels.
  EXPECT_EQ(class_histogram(s), class_histogram(d));
  EXPECT_THROW(take(d, 0), std::invalid_argument);
  EXPECT_THROW(take(d, 101), std::invalid_argument);
}

TEST(IdxLoader, RoundTripSyntheticIdxFiles) {
  // Write a tiny valid IDX pair and read it back.
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "scnn_idx_test";
  fs::create_directories(dir);
  const auto img_path = (dir / "imgs").string();
  const auto lab_path = (dir / "labs").string();
  {
    std::ofstream img(img_path, std::ios::binary);
    const unsigned char header[] = {0, 0, 8, 3, 0, 0, 0, 2, 0, 0, 0, 2, 0, 0, 0, 2};
    img.write(reinterpret_cast<const char*>(header), sizeof header);
    for (int i = 0; i < 8; ++i) img.put(static_cast<char>(i * 30));
    std::ofstream lab(lab_path, std::ios::binary);
    const unsigned char lheader[] = {0, 0, 8, 1, 0, 0, 0, 2};
    lab.write(reinterpret_cast<const char*>(lheader), sizeof lheader);
    lab.put(3);
    lab.put(9);
  }
  const auto d = load_idx(img_path, lab_path);
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.images.h(), 2);
  EXPECT_EQ(d.labels[0], 3);
  EXPECT_EQ(d.labels[1], 9);
  EXPECT_NEAR(d.images[1], 30.0f / 255.0f, 1e-6f);
  EXPECT_THROW(load_idx(lab_path, lab_path), std::runtime_error);  // wrong magic
  fs::remove_all(dir);
}

TEST(IdxLoader, MissingDirectoryYieldsNullopt) {
  EXPECT_FALSE(try_load_mnist("/nonexistent/dir", true).has_value());
  EXPECT_FALSE(try_load_cifar10("/nonexistent/dir", false).has_value());
}

TEST(CifarLoader, RoundTripBinaryBatch) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "scnn_cifar_test";
  fs::create_directories(dir);
  const auto path = (dir / "batch.bin").string();
  {
    std::ofstream f(path, std::ios::binary);
    for (int rec = 0; rec < 2; ++rec) {
      f.put(static_cast<char>(rec + 1));  // label
      for (int p = 0; p < 3072; ++p) f.put(static_cast<char>(p % 256));
    }
  }
  const auto d = load_cifar10_binary({path});
  EXPECT_EQ(d.size(), 2);
  EXPECT_EQ(d.labels[0], 1);
  EXPECT_EQ(d.labels[1], 2);
  EXPECT_EQ(d.images.c(), 3);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace scnn::data
