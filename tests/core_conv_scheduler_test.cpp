#include "core/conv_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "core/scmac.hpp"

namespace scnn::core {
namespace {

std::vector<std::int32_t> random_codes(std::size_t count, int n_bits, std::uint64_t seed) {
  common::SplitMix64 rng(seed);
  const std::int32_t half = 1 << (n_bits - 1);
  std::vector<std::int32_t> v(count);
  for (auto& c : v)
    c = static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(2 * half))) - half;
  return v;
}

/// Direct reference: per-output saturating accumulation of proposed products.
std::vector<std::int32_t> reference_conv(const ConvDims& d,
                                         std::span<const std::int32_t> w,
                                         std::span<const std::int32_t> in, int n_bits,
                                         int accum_bits) {
  const int R = d.out_rows(), C = d.out_cols();
  std::vector<std::int32_t> out(static_cast<std::size_t>(d.M) * R * C, 0);
  for (int m = 0; m < d.M; ++m) {
    for (int r = 0; r < R; ++r) {
      for (int c = 0; c < C; ++c) {
        common::SaturatingAccumulator acc(n_bits + accum_bits);
        for (int z = 0; z < d.Z; ++z) {
          for (int i = 0; i < d.K; ++i) {
            for (int j = 0; j < d.K; ++j) {
              const int y = d.S * r + i - d.P, x = d.S * c + j - d.P;
              const std::int32_t qx =
                  (y < 0 || y >= d.H || x < 0 || x >= d.W)
                      ? 0
                      : in[(static_cast<std::size_t>(z) * d.H + y) * d.W + x];
              const std::int32_t qw = w[(static_cast<std::size_t>(m) * d.Z + z) *
                                            static_cast<std::size_t>(d.K) * d.K +
                                        static_cast<std::size_t>(i) * d.K + j];
              // Tick-level equivalent when no mid-product rail bounce occurs;
              // with generous accum_bits the two coincide.
              acc.add(multiply_signed(n_bits, qx, qw));
            }
          }
        }
        out[(static_cast<std::size_t>(m) * R + r) * C + c] = static_cast<std::int32_t>(acc.value());
      }
    }
  }
  return out;
}

TEST(ConvDims, OutputGeometry) {
  const ConvDims d{.M = 20, .Z = 1, .H = 28, .W = 28, .K = 5, .S = 1, .P = 0};
  EXPECT_EQ(d.out_rows(), 24);
  EXPECT_EQ(d.out_cols(), 24);
  EXPECT_EQ(d.mac_count(), 20ull * 24 * 24 * 25);
  const ConvDims pad{.M = 4, .Z = 3, .H = 32, .W = 32, .K = 5, .S = 1, .P = 2};
  EXPECT_EQ(pad.out_rows(), 32);
  EXPECT_EQ(pad.out_cols(), 32);
}

TEST(ConvScheduler, MvmConvMatchesReference) {
  const ConvDims d{.M = 3, .Z = 2, .H = 8, .W = 8, .K = 3, .S = 1, .P = 1};
  const int n = 6, a = 8;  // generous accumulator: no saturation
  const auto w = random_codes(static_cast<std::size_t>(d.M) * d.Z * d.K * d.K, n, 1);
  const auto in = random_codes(static_cast<std::size_t>(d.Z) * d.H * d.W, n, 2);
  const Tiling t{.tm = 2, .tr = 3, .tc = 4};
  const auto got = conv_via_mvm(d, t, w, in, n, a);
  const auto ref = reference_conv(d, w, in, n, a);
  ASSERT_EQ(got.out.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(got.out[i], ref[i]) << i;
}

TEST(ConvScheduler, BitParallelConvMatchesSerialConv) {
  const ConvDims d{.M = 2, .Z = 1, .H = 6, .W = 6, .K = 3, .S = 1, .P = 0};
  const int n = 8, a = 8;
  const auto w = random_codes(static_cast<std::size_t>(d.M) * d.Z * d.K * d.K, n, 3);
  const auto in = random_codes(static_cast<std::size_t>(d.Z) * d.H * d.W, n, 4);
  const Tiling t{.tm = 1, .tr = 2, .tc = 2};
  const auto serial = conv_via_mvm(d, t, w, in, n, a, 1);
  const auto par = conv_via_mvm(d, t, w, in, n, a, 8);
  EXPECT_EQ(serial.out, par.out);
  EXPECT_GT(serial.cycles, par.cycles);  // parallel is strictly faster here
}

TEST(ConvScheduler, ScheduleMatchesFunctionalCycles) {
  const ConvDims d{.M = 4, .Z = 2, .H = 10, .W = 10, .K = 3, .S = 1, .P = 0};
  const int n = 7;
  const auto w = random_codes(static_cast<std::size_t>(d.M) * d.Z * d.K * d.K, n, 5);
  const auto in = random_codes(static_cast<std::size_t>(d.Z) * d.H * d.W, n, 6);
  const Tiling t{.tm = 2, .tr = 4, .tc = 4};
  const auto sched = schedule_conv(d, t, w, n);
  const auto run = conv_via_mvm(d, t, w, in, n, 8);
  EXPECT_EQ(sched.total_cycles, run.cycles);
}

TEST(ConvScheduler, ScheduleMatchesFunctionalCyclesBitParallel) {
  const ConvDims d{.M = 3, .Z = 1, .H = 9, .W = 9, .K = 3, .S = 2, .P = 1};
  const int n = 9;
  const auto w = random_codes(static_cast<std::size_t>(d.M) * d.Z * d.K * d.K, n, 7);
  const auto in = random_codes(static_cast<std::size_t>(d.Z) * d.H * d.W, n, 8);
  const Tiling t{.tm = 3, .tr = 2, .tc = 3};
  const auto sched = schedule_conv(d, t, w, n, /*bit_parallel=*/8);
  const auto run = conv_via_mvm(d, t, w, in, n, 8, /*bit_parallel=*/8);
  EXPECT_EQ(sched.total_cycles, run.cycles);
}

TEST(ConvScheduler, SmallWeightsMeanLowLatency) {
  // Sec. 3.2: bell-shaped weights around zero => avg cycles/MAC far below
  // the conventional-SC 2^N.
  const ConvDims d{.M = 8, .Z = 4, .H = 12, .W = 12, .K = 3, .S = 1, .P = 0};
  const int n = 8;
  // Small weights: |qw| <= 8 out of 128.
  std::vector<std::int32_t> w(static_cast<std::size_t>(d.M) * d.Z * d.K * d.K);
  common::SplitMix64 rng(9);
  for (auto& c : w) c = static_cast<std::int32_t>(rng.next_below(17)) - 8;
  const Tiling t{.tm = 4, .tr = 4, .tc = 4};
  const auto sched = schedule_conv(d, t, w, n);
  EXPECT_LE(sched.avg_cycles_per_mac, 10.0);
  const auto conv_sc = conventional_sc_conv_cycles(d, t, n);
  EXPECT_LT(sched.total_cycles * 10, conv_sc);  // >10x faster than conv. SC
}

TEST(ConvScheduler, BinaryCyclesBaseline) {
  const ConvDims d{.M = 4, .Z = 2, .H = 8, .W = 8, .K = 3, .S = 1, .P = 0};
  const Tiling t{.tm = 2, .tr = 2, .tc = 2};
  // m-tiles=2, positions=3*3, d=18 -> 2*9*18 = 324 cycles.
  EXPECT_EQ(binary_conv_cycles(d, t), 324u);
  EXPECT_EQ(conventional_sc_conv_cycles(d, t, 5), 324u * 32u);
}

TEST(ConvScheduler, RejectsBadShapes) {
  const ConvDims d{.M = 2, .Z = 1, .H = 4, .W = 4, .K = 3, .S = 1, .P = 0};
  const Tiling t{.tm = 1, .tr = 2, .tc = 2};
  std::vector<std::int32_t> w(5, 0);   // wrong weight count
  std::vector<std::int32_t> in(16, 0);
  EXPECT_THROW(conv_via_mvm(d, t, w, in, 5, 2), std::invalid_argument);
  std::vector<std::int32_t> w_ok(static_cast<std::size_t>(2) * 9, 0);
  std::vector<std::int32_t> in_bad(7, 0);
  EXPECT_THROW(conv_via_mvm(d, t, w_ok, in_bad, 5, 2), std::invalid_argument);
}

}  // namespace
}  // namespace scnn::core
