// ScratchArena's alignment guarantee: every span it hands out is at least
// 32-byte aligned (ScratchArena::kAlignment), across element types, frames,
// and overflow chunks — the property the SIMD mac_rows backends rely on for
// aligned loads/stores on arena-backed patch and accumulator buffers.
// (Frame-reuse and thread-locality behaviour is covered in
// nn_conv_im2col_test.cpp next to the im2col consumer.)
#include <gtest/gtest.h>

#include <cstdint>

#include "common/scratch_arena.hpp"

namespace scnn::common {
namespace {

bool aligned32(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % ScratchArena::kAlignment == 0;
}

TEST(ScratchArenaAlignment, EverySpanIs32ByteAlignedAcrossTypes) {
  static_assert(ScratchArena::kAlignment == 32);
  ScratchArena arena;
  const auto frame = arena.frame();
  (void)frame;
  // Mixed sizes chosen so a naive bump (pad to alignof(T) only) would
  // misalign every allocation after the first.
  EXPECT_TRUE(aligned32(arena.take<std::int8_t>(3).data()));
  EXPECT_TRUE(aligned32(arena.take<std::int16_t>(7).data()));
  EXPECT_TRUE(aligned32(arena.take<std::int32_t>(5).data()));
  EXPECT_TRUE(aligned32(arena.take<std::int64_t>(9).data()));
  EXPECT_TRUE(aligned32(arena.take<float>(1).data()));
  EXPECT_TRUE(aligned32(arena.take<std::int8_t>(0).data()));
}

TEST(ScratchArenaAlignment, HoldsAcrossFramesAndConsolidation) {
  ScratchArena arena;
  for (int f = 0; f < 3; ++f) {
    const auto frame = arena.frame();
    (void)frame;
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(aligned32(arena.take<std::int8_t>(static_cast<std::size_t>(i) + 1)
                                .data()))
          << "frame " << f << " take " << i;
    }
  }
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(ScratchArenaAlignment, HoldsOnOverflowChunks) {
  ScratchArena arena;
  const auto frame = arena.frame();
  (void)frame;
  (void)arena.take<std::int8_t>(1);  // seed the small initial chunk
  // Far larger than the initial chunk: served from a dedicated overflow
  // chunk, which must honor the same guarantee.
  auto big = arena.take<std::int32_t>(1 << 20);
  EXPECT_TRUE(aligned32(big.data()));
  EXPECT_GT(arena.chunk_count(), 1u);
  big[big.size() - 1] = 7;  // the span is fully usable
  EXPECT_EQ(big[big.size() - 1], 7);
}

}  // namespace
}  // namespace scnn::common
