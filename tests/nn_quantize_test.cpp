#include "nn/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/network.hpp"

namespace scnn::nn {
namespace {

void randomize(Tensor& t, std::uint64_t seed, double scale) {
  common::SplitMix64 rng(seed);
  for (auto& v : t.data()) v = static_cast<float>(rng.next_gaussian() * scale);
}

TEST(MacEngineTest, FixedEngineMatchesSaturatedSum) {
  auto e = make_engine({.kind = EngineKind::kFixed, .n_bits = 5});
  // 7-bit accumulator: [-64, 63]. Products in 2^-4 units.
  const std::vector<std::int32_t> w = {15, 15, 15};
  const std::vector<std::int32_t> x = {15, 15, 15};
  // 15*15 = 225 >> 4 = 14 each; 3*14 = 42, below rail.
  EXPECT_EQ(e->mac(w, x), 42);
  const std::vector<std::int32_t> w2(10, 15), x2(10, 15);
  EXPECT_EQ(e->mac(w2, x2), 63);  // saturates
}

TEST(MacEngineTest, EnginesDifferInArithmetic) {
  const std::vector<std::int32_t> w = {9, -13};
  const std::vector<std::int32_t> x = {11, 7};
  auto fixed = make_engine({.kind = EngineKind::kFixed, .n_bits = 8});
  auto prop = make_engine({.kind = EngineKind::kProposed, .n_bits = 8});
  auto lfsr = make_engine({.kind = EngineKind::kScLfsr, .n_bits = 8});
  // All approximate the same dot product (codes/128): 9*11 - 13*7 = 8 in
  // 2^-7... exact 2^-7-unit value: (99 - 91)/128 = 0.0625 -> ~0.06 in LSBs 0.0625*128=8...
  const double exact = (9.0 * 11 - 13.0 * 7) / 128.0;
  for (MacEngine* e : {fixed.get(), prop.get(), lfsr.get()}) {
    EXPECT_NEAR(static_cast<double>(e->mac(w, x)), exact, 16.0) << e->name();
  }
  EXPECT_EQ(fixed->name(), "fixed");
  EXPECT_EQ(prop->name(), "proposed");
  EXPECT_EQ(lfsr->name(), "sc-lfsr");
}

TEST(MacEngineTest, UnknownKindNameThrows) {
  EXPECT_THROW(engine_kind_from_string("nope"), std::invalid_argument);
}

TEST(MacEngineTest, KindRoundTripsThroughStrings) {
  for (const EngineKind k :
       {EngineKind::kFixed, EngineKind::kScLfsr, EngineKind::kProposed})
    EXPECT_EQ(engine_kind_from_string(to_string(k)), k);
}

TEST(MacEngineTest, ConfigValidationRejectsOutOfRangeFields) {
  EXPECT_NO_THROW((EngineConfig{.n_bits = EngineConfig::kMinBits}.validate()));
  EXPECT_NO_THROW((EngineConfig{.n_bits = EngineConfig::kMaxBits}.validate()));
  EXPECT_THROW((EngineConfig{.n_bits = 1}.validate()), std::invalid_argument);
  EXPECT_THROW((EngineConfig{.n_bits = 13}.validate()), std::invalid_argument);
  EXPECT_THROW((EngineConfig{.accum_bits = -1}.validate()), std::invalid_argument);
  EXPECT_THROW((EngineConfig{.accum_bits = 99}.validate()), std::invalid_argument);
  EXPECT_THROW((EngineConfig{.bit_parallel = 0}.validate()), std::invalid_argument);
  EXPECT_THROW((EngineConfig{.threads = -2}.validate()), std::invalid_argument);
  // make_engine validates on entry instead of silently building the LUT.
  EXPECT_THROW(make_engine(EngineConfig{.n_bits = 40}), std::invalid_argument);
  // EnginePool::get validates too.
  EnginePool pool;
  EXPECT_THROW(pool.get({.n_bits = 1}), std::invalid_argument);
}

TEST(MacEngineTest, ConfigBuildsWhatTheShimUsedTo) {
  // The pre-1.1 stringly make_engine(kind, n_bits, accum_bits) shim is gone;
  // the typed config covers the same ground, string parsing included.
  const auto e = make_engine({.kind = engine_kind_from_string("proposed"),
                              .n_bits = 8,
                              .accum_bits = 2});
  EXPECT_EQ(e->name(), "proposed");
  EXPECT_EQ(e->bits(), 8);
  EXPECT_EQ(e->accum_bits(), 2);
}

TEST(MacEngineTest, MacStatsCountSaturations) {
  const auto e = make_engine({.kind = EngineKind::kFixed, .n_bits = 5});
  // 7-bit accumulator rail is 63; 15*15 >> 4 = 14 per product, so products
  // 5..10 each clamp.
  const std::vector<std::int32_t> w(10, 15), x(10, 15);
  MacStats stats;
  EXPECT_EQ(e->mac(w, x, stats), 63);
  EXPECT_EQ(stats.macs, 1u);
  EXPECT_EQ(stats.products, 10u);
  EXPECT_GT(stats.saturations, 0u);
}

TEST(Quantize, CalibrationSetsPowerOfTwoScales) {
  Network net = make_mnist_net(28, 1, 5);
  Tensor batch(4, 1, 28, 28);
  randomize(batch, 1, 2.0);  // inputs beyond [-1,1] force act_scale > 1
  calibrate_network(net, batch);
  for (Conv2D* c : net.conv_layers()) {
    const float as = c->activation_scale();
    const float ws = c->weight_scale();
    EXPECT_GE(as, 1.0f);
    EXPECT_GE(ws, 1.0f);
    EXPECT_FLOAT_EQ(std::exp2(std::round(std::log2(as))), as) << "act scale not pow2";
    EXPECT_FLOAT_EQ(std::exp2(std::round(std::log2(ws))), ws) << "w scale not pow2";
  }
}

TEST(Quantize, HighPrecisionQuantizedConvTracksFloat) {
  // With 12-bit codes... max supported LUT is 12; use 10 bits and wide A:
  // quantized conv output should approximate the float output closely.
  Network net = make_mnist_net(28, 1, 6);
  Tensor x(2, 1, 28, 28);
  randomize(x, 2, 0.3);
  calibrate_network(net, x);
  const Tensor y_float = net.forward(x);

  EnginePool pool;
  const MacEngine* e = pool.get({.kind = EngineKind::kFixed, .n_bits = 10, .accum_bits = 6});
  set_conv_engine(net, e);
  const Tensor y_q = net.forward(x);
  set_conv_engine(net, nullptr);

  ASSERT_TRUE(y_q.same_shape(y_float));
  double max_rel = 0;
  for (std::size_t i = 0; i < y_q.size(); ++i) {
    max_rel = std::max(max_rel, static_cast<double>(std::abs(y_q[i] - y_float[i])));
  }
  EXPECT_LT(max_rel, 2.0);  // logits land close to float
}

TEST(Quantize, LowPrecisionDegradesMoreThanHighPrecision) {
  Network net = make_mnist_net(28, 1, 7);
  Tensor x(2, 1, 28, 28);
  randomize(x, 3, 0.3);
  calibrate_network(net, x);
  const Tensor y_float = net.forward(x);

  EnginePool pool;
  auto err_at = [&](int n_bits) {
    set_conv_engine(net, pool.get({.kind = EngineKind::kFixed, .n_bits = n_bits}));
    const Tensor y = net.forward(x);
    set_conv_engine(net, nullptr);
    double e2 = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      const double d = y[i] - y_float[i];
      e2 += d * d;
    }
    return e2;
  };
  EXPECT_GT(err_at(4), err_at(9));
}

TEST(Quantize, StridedPaddedQuantizedConvTracksFloat) {
  // The quantized gather path must handle stride and padding exactly like
  // the float path: at high precision the two outputs coincide closely.
  Conv2D conv(2, 3, 3, /*stride=*/2, /*pad=*/1);
  conv.init_weights(91);
  Tensor x(2, 2, 9, 9);
  randomize(x, 92, 0.3);
  conv.calibrate_scales(x);
  const Tensor y_float = conv.forward(x);
  const auto engine = make_engine({.kind = EngineKind::kFixed, .n_bits = 11, .accum_bits = 6});
  conv.set_engine(engine.get());
  const Tensor y_q = conv.forward(x);
  ASSERT_TRUE(y_q.same_shape(y_float));
  for (std::size_t i = 0; i < y_q.size(); ++i)
    ASSERT_NEAR(y_q[i], y_float[i], 0.05f) << i;
}

TEST(Quantize, QuantizedConvRespectsActivationScale) {
  // Inputs far outside [-1, 1): without calibration they clip; with
  // calibration the layer absorbs them via the power-of-two scale.
  Conv2D conv(1, 1, 1);
  conv.mutable_weight().fill(0.5f);
  Tensor x(1, 1, 2, 2);
  x.fill(6.0f);  // 0.5 * 6 = 3.0 expected
  const auto engine = make_engine({.kind = EngineKind::kFixed, .n_bits = 10, .accum_bits = 4});
  conv.set_engine(engine.get());
  // Default scale 1.0: the activation code clips at ~1, output ~0.5.
  const Tensor clipped = conv.forward(x);
  EXPECT_NEAR(clipped[0], 0.5f, 0.05f);
  // Calibrated: act_scale = 8, output recovers 3.0.
  conv.calibrate_scales(x);
  EXPECT_FLOAT_EQ(conv.activation_scale(), 8.0f);
  const Tensor scaled = conv.forward(x);
  EXPECT_NEAR(scaled[0], 3.0f, 0.05f);
}

TEST(Quantize, EnginePoolDeduplicates) {
  EnginePool pool;
  const MacEngine* a = pool.get({.kind = EngineKind::kProposed, .n_bits = 7});
  const MacEngine* b = pool.get({.kind = EngineKind::kProposed, .n_bits = 7});
  const MacEngine* c = pool.get({.kind = EngineKind::kProposed, .n_bits = 8});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Quantize, EngineConfigLabel) {
  const EngineConfig cfg{.kind = EngineKind::kScLfsr, .n_bits = 9};
  EXPECT_EQ(cfg.label(), "sc-lfsr/N=9");
}

}  // namespace
}  // namespace scnn::nn
