// Golden-vector regression for the proposed multiplier: a checked-in fixture
// (tests/golden/signed_multiply_golden.txt) pins the exact product and cycle
// count for a spread of (N, qx, qw) cases — including the paper's Table 1
// worked example — and every engine that claims to implement the multiplier
// must reproduce them bit-for-bit:
//
//   core::multiply_signed          (closed form)
//   core::ScMac                    (cycle-accurate accumulator)
//   core::BitSerialMultiplier      (per-cycle stepper)
//   core::make_proposed_lut        (the `sc` ProductLut the CNN path uses)
//   nn::LutEngine::mac             (the inference engine on that LUT)
//
// If a change to the FSM/MUX sequence or rounding alters any product, this
// test names the exact vector that moved.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/scmac.hpp"
#include "nn/mac_engine.hpp"

#ifndef SCNN_GOLDEN_DIR
#error "SCNN_GOLDEN_DIR must point at tests/golden (set in tests/CMakeLists.txt)"
#endif

namespace scnn {
namespace {

struct Vector {
  int n = 0;
  std::int32_t qx = 0, qw = 0;
  std::int32_t product = 0;  // accumulator LSBs, units of 2^-(N-1)
  std::uint32_t cycles = 0;  // k = |qw|
};

std::vector<Vector> load_fixture() {
  const std::string path = std::string(SCNN_GOLDEN_DIR) + "/signed_multiply_golden.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::vector<Vector> out;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream row(line);
    Vector v;
    EXPECT_TRUE(row >> v.n >> v.qx >> v.qw >> v.product >> v.cycles)
        << "malformed fixture line: " << line;
    out.push_back(v);
  }
  return out;
}

std::string label(const Vector& v) {
  return "N=" + std::to_string(v.n) + " qx=" + std::to_string(v.qx) +
         " qw=" + std::to_string(v.qw);
}

TEST(GoldenVectors, FixtureCoversEveryPrecisionAndTable1) {
  const std::vector<Vector> vectors = load_fixture();
  ASSERT_GE(vectors.size(), 30u);
  std::map<int, int> per_n;
  for (const Vector& v : vectors) ++per_n[v.n];
  for (const int n : {4, 5, 6, 7, 8}) EXPECT_GE(per_n[n], 4) << "N=" << n;

  // The paper's Table 1 worked example (N=4) must be present verbatim.
  const std::vector<Vector> table1 = {
      {4, 0, -8, 0, 8}, {4, 7, -8, -8, 8}, {4, -8, -8, 8, 8},
      {4, 0, 7, 1, 7},  {4, 7, 7, 7, 7},   {4, -8, 7, -7, 7},
  };
  for (const Vector& want : table1) {
    bool found = false;
    for (const Vector& v : vectors)
      found = found || (v.n == want.n && v.qx == want.qx && v.qw == want.qw &&
                        v.product == want.product && v.cycles == want.cycles);
    EXPECT_TRUE(found) << "Table 1 row missing or wrong: " << label(want);
  }
}

TEST(GoldenVectors, ClosedFormAndScMacMatchFixture) {
  for (const Vector& v : load_fixture()) {
    EXPECT_EQ(core::multiply_signed(v.n, v.qx, v.qw), v.product) << label(v);
    EXPECT_EQ(core::multiply_latency(v.qw), v.cycles) << label(v);
    core::ScMac mac(v.n, /*accum_bits=*/4);
    EXPECT_EQ(mac.accumulate(v.qx, v.qw), v.cycles) << label(v);
    EXPECT_EQ(mac.value(), v.product) << label(v);
  }
}

TEST(GoldenVectors, BitSerialStepperMatchesFixtureCycleForCycle) {
  for (const Vector& v : load_fixture()) {
    core::BitSerialMultiplier m(v.n, v.qx, v.qw);
    EXPECT_EQ(m.total_cycles(), v.cycles) << label(v);
    while (m.step()) {
    }
    EXPECT_TRUE(m.done()) << label(v);
    EXPECT_EQ(m.cycle(), v.cycles) << label(v);
    EXPECT_EQ(m.counter(), v.product) << label(v);
  }
}

TEST(GoldenVectors, ProposedLutAndLutEngineMatchFixture) {
  // One LUT + engine per precision, shared across that precision's vectors.
  std::map<int, std::unique_ptr<nn::LutEngine>> engines;
  for (const Vector& v : load_fixture()) {
    auto it = engines.find(v.n);
    if (it == engines.end())
      it = engines
               .emplace(v.n, std::make_unique<nn::LutEngine>(
                                 core::make_proposed_lut(v.n), /*accum_bits=*/8))
               .first;
    const nn::LutEngine& engine = *it->second;
    EXPECT_EQ(engine.lut().at(v.qw, v.qx), v.product) << label(v);
    const std::int32_t w[] = {v.qw};
    const std::int32_t x[] = {v.qx};
    EXPECT_EQ(engine.mac(w, x), v.product) << label(v);
  }
}

}  // namespace
}  // namespace scnn
