// Integration tests across the whole stack: dataset -> training -> quantized
// SC inference -> accelerator latency model. These are the claims of the
// paper's Sec. 4.2/4.3 in miniature.
#include <gtest/gtest.h>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "core/conv_scheduler.hpp"
#include "data/synthetic_digits.hpp"
#include "hw/array_model.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"

namespace scnn {
namespace {

struct TrainedNet {
  nn::Network net;
  data::Dataset train;
  data::Dataset test;
};

TrainedNet make_trained_digit_net() {
  TrainedNet t;
  t.train = data::make_synthetic_digits({.count = 400, .seed = 101});
  t.test = data::make_synthetic_digits({.count = 150, .seed = 102});
  t.net = nn::make_mnist_net(28, 1, 55);
  nn::SgdTrainer trainer({.epochs = 6, .batch_size = 20, .learning_rate = 0.01f});
  trainer.train(t.net, t.train.images, t.train.labels);
  nn::calibrate_network(t.net, nn::batch_slice(t.train.images, 0, 50));
  return t;
}

TEST(Integration, ProposedScTracksFixedPointAccuracy) {
  // Fig. 6's qualitative core at one precision: at N = 8 the proposed SC
  // network is nearly as accurate as fixed-point, while conventional
  // LFSR-SC falls measurably behind (no fine-tuning).
  auto t = make_trained_digit_net();
  const double acc_float = t.net.accuracy(t.test.images, t.test.labels);
  ASSERT_GE(acc_float, 0.8);

  nn::EnginePool pool;
  auto acc_with = [&](nn::EngineKind kind, int n_bits) {
    nn::set_conv_engine(t.net, pool.get({.kind = kind, .n_bits = n_bits}));
    const double a = t.net.accuracy(t.test.images, t.test.labels);
    nn::set_conv_engine(t.net, nullptr);
    return a;
  };

  const double acc_fixed = acc_with(nn::EngineKind::kFixed, 8);
  const double acc_prop = acc_with(nn::EngineKind::kProposed, 8);
  const double acc_lfsr = acc_with(nn::EngineKind::kScLfsr, 8);

  EXPECT_GE(acc_fixed, acc_float - 0.05);
  EXPECT_GE(acc_prop, acc_fixed - 0.05);  // "almost the same as fixed-point"
  EXPECT_LE(acc_lfsr, acc_prop + 1e-9);   // conventional SC never wins
}

TEST(Integration, TrainedWeightsGiveLowAverageLatency) {
  // Sec. 3.2: real (trained, bell-shaped) weights make the average enable
  // count far smaller than the worst case 2^(N-1).
  auto t = make_trained_digit_net();
  const int n_bits = 8;
  for (nn::Conv2D* conv : t.net.conv_layers()) {
    const auto codes = conv->quantized_weights(n_bits);
    const double avg = hw::average_enable_cycles(codes);
    EXPECT_LT(avg, 0.35 * 128.0) << "weights not bell-shaped?";
    EXPECT_GT(avg, 0.0);
  }
}

TEST(Integration, AcceleratorScheduleBeatsConventionalSc) {
  // End-to-end latency through the Fig. 4 tiled mapping with the real
  // trained weights of the first conv layer.
  auto t = make_trained_digit_net();
  nn::Conv2D* conv = t.net.conv_layers().front();
  const int n_bits = 8;
  const auto codes = conv->quantized_weights(n_bits);
  const core::ConvDims dims = conv->dims_for(t.test.images);
  const core::Tiling tiling{.tm = 2, .tr = 4, .tc = 4};
  const auto sched = core::schedule_conv(dims, tiling, codes, n_bits);
  const auto conv_sc = core::conventional_sc_conv_cycles(dims, tiling, n_bits);
  const auto binary = core::binary_conv_cycles(dims, tiling);
  EXPECT_LT(sched.total_cycles, conv_sc / 4);  // far faster than conv. SC
  EXPECT_GT(sched.total_cycles, binary);       // slower than 1-cycle binary
}

TEST(Integration, EndToEndMetricsFavorProposed) {
  // Hardware metrics with the measured weight statistics: the proposed
  // 8b-parallel array must beat conventional SC on energy by a wide margin.
  auto t = make_trained_digit_net();
  std::vector<std::int32_t> all_codes;
  for (nn::Conv2D* conv : t.net.conv_layers()) {
    const auto c = conv->quantized_weights(8);
    all_codes.insert(all_codes.end(), c.begin(), c.end());
  }
  const double avg = hw::average_enable_cycles(all_codes);
  const auto ours = hw::array_metrics(hw::MacKind::kProposedParallel, 8, 256, avg, 2, 8);
  const auto conv = hw::array_metrics(hw::MacKind::kConvScLfsr, 8, 256, avg);
  EXPECT_GT(conv.energy_per_gop_mj / ours.energy_per_gop_mj, 20.0);
}

TEST(Integration, QuantizedConvLayerMatchesMvmExecutor) {
  // Cross-layer consistency: the nn::Conv2D quantized forward (LUT engine,
  // product-level saturation) must agree with core::conv_via_mvm (the
  // cycle-accurate BISC-MVM executor) when the accumulator is wide enough
  // that tick-level and product-level saturation coincide.
  const int n_bits = 6, a_bits = 8;
  const std::int32_t half = 1 << (n_bits - 1);
  nn::Conv2D conv(2, 3, 3, 1, 1);

  // Weights/inputs exactly representable at N bits (float = code / 2^(N-1)).
  common::SplitMix64 rng(7);
  for (auto& v : conv.mutable_weight().data()) {
    const auto code = static_cast<std::int32_t>(rng.next_below(2 * half)) - half;
    v = static_cast<float>(common::dequantize(code, n_bits));
  }
  nn::Tensor x(1, 2, 6, 6);
  for (auto& v : x.data()) {
    const auto code = static_cast<std::int32_t>(rng.next_below(2 * half)) - half;
    v = static_cast<float>(common::dequantize(code, n_bits));
  }

  const auto engine = nn::make_engine({.kind = nn::EngineKind::kProposed, .n_bits = n_bits, .accum_bits = a_bits});
  conv.set_engine(engine.get());
  const nn::Tensor y = conv.forward(x);

  // Same computation through the BISC-MVM executor, raw codes.
  const auto dims = conv.dims_for(x);
  const auto wcodes = conv.quantized_weights(n_bits);
  std::vector<std::int32_t> xcodes;
  xcodes.reserve(x.size());
  for (const float v : x.data()) xcodes.push_back(common::quantize(v, n_bits));
  const auto mvm =
      core::conv_via_mvm(dims, core::Tiling{.tm = 1, .tr = 2, .tc = 3}, wcodes, xcodes,
                         n_bits, a_bits);

  ASSERT_EQ(y.size(), mvm.out.size());
  const double scale = static_cast<double>(half);
  for (std::size_t i = 0; i < mvm.out.size(); ++i) {
    ASSERT_NEAR(y[i] * scale, static_cast<double>(mvm.out[i]), 1e-3) << i;
  }
}

}  // namespace
}  // namespace scnn
