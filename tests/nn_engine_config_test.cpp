// EngineConfig's JSON round-trip — the contract behind --metrics-out
// stamping and `scnn_cli serve --engine-config=`: from_json(to_json(cfg))
// must reproduce every field for any valid configuration, and malformed
// input must be rejected with an error naming the offending token.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "nn/mac_engine.hpp"

namespace scnn::nn {
namespace {

TEST(EngineConfigJson, RoundTripsEveryFieldAcrossAConfigSweep) {
  for (const EngineKind kind :
       {EngineKind::kFixed, EngineKind::kScLfsr, EngineKind::kProposed}) {
    for (const MacBackend backend :
         {MacBackend::kAuto, MacBackend::kScalar, MacBackend::kSimd}) {
      for (const int n_bits : {2, 8, 12}) {
        for (const int accum_bits : {0, 2, 20}) {
          for (const int bit_parallel : {1, 8}) {
            for (const int threads : {0, 1, 4}) {
              for (const bool instrument : {false, true}) {
                for (const Sparsity sparsity :
                     {Sparsity::kDense, Sparsity::kZeroSkip, Sparsity::kAuto}) {
                  const EngineConfig cfg{.kind = kind,
                                         .n_bits = n_bits,
                                         .accum_bits = accum_bits,
                                         .bit_parallel = bit_parallel,
                                         .threads = threads,
                                         .instrument = instrument,
                                         .backend = backend,
                                         .sparsity = sparsity};
                  EXPECT_EQ(EngineConfig::from_json(cfg.to_json()), cfg)
                      << cfg.to_json();
                }
              }
            }
          }
        }
      }
    }
  }
}

TEST(EngineConfigJson, DefaultsSurviveTheTrip) {
  const EngineConfig def;
  EXPECT_EQ(EngineConfig::from_json(def.to_json()), def);
  // Absent keys keep their defaults: an empty object is the default config.
  EXPECT_EQ(EngineConfig::from_json("{}"), def);
  EXPECT_EQ(EngineConfig::from_json("  {\n}  "), def);
}

TEST(EngineConfigJson, AcceptsAnyKeyOrderAndWhitespace) {
  const EngineConfig cfg = EngineConfig::from_json(
      " { \"threads\" : 3 ,\n \"kind\" : \"fixed\" , \"backend\" : \"simd\" ,"
      " \"instrument\" : true , \"n_bits\" : 6 } ");
  EXPECT_EQ(cfg.kind, EngineKind::kFixed);
  EXPECT_EQ(cfg.backend, MacBackend::kSimd);
  EXPECT_EQ(cfg.n_bits, 6);
  EXPECT_EQ(cfg.threads, 3);
  EXPECT_TRUE(cfg.instrument);
  EXPECT_EQ(cfg.accum_bits, EngineConfig{}.accum_bits);  // untouched default
}

void expect_rejects(const std::string& json, const std::string& token) {
  try {
    (void)EngineConfig::from_json(json);
    FAIL() << "accepted: " << json;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(token), std::string::npos)
        << "error for `" << json << "` does not name `" << token
        << "`: " << e.what();
  }
}

TEST(EngineConfigJson, RejectsMalformedInputNamingTheOffender) {
  expect_rejects("", "end of input");
  expect_rejects("[]", "{");
  expect_rejects("{\"n_bits\":}", "integer");
  expect_rejects("{\"n_bits\":abc}", "integer");
  expect_rejects("{\"instrument\":yes}", "true or false");
  expect_rejects("{\"kind\":\"mystery\"}", "mystery");
  expect_rejects("{\"backend\":\"avx512\"}", "avx512");
  expect_rejects("{\"sparsity\":\"zig\"}", "zig");
  expect_rejects("{\"flux_capacitance\":3}", "flux_capacitance");
  expect_rejects("{\"n_bits\":8", "end of input");
  expect_rejects("{\"n_bits\":8}trailing", "trailing");
  expect_rejects("{\"n_bits\":8 \"threads\":1}", ",");
  expect_rejects("{\"kind\":\"fix\\u0065d\"}", "escape");
}

TEST(EngineConfigJson, FromJsonDoesNotRangeCheckValidateDoes) {
  // Parsing and validation are separate stages (parse errors name tokens,
  // range errors name fields); serve calls validate() after from_json().
  const EngineConfig cfg = EngineConfig::from_json("{\"n_bits\":40}");
  EXPECT_EQ(cfg.n_bits, 40);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EngineConfigLabel, AppendsOnlyNonDefaultBackendsAndSparsity) {
  EXPECT_EQ((EngineConfig{.kind = EngineKind::kScLfsr, .n_bits = 9}.label()),
            "sc-lfsr/N=9");
  EXPECT_EQ((EngineConfig{.n_bits = 8, .backend = MacBackend::kScalar}.label()),
            "proposed/N=8/scalar");
  EXPECT_EQ((EngineConfig{.n_bits = 8, .backend = MacBackend::kSimd}.label()),
            "proposed/N=8/simd");
  EXPECT_EQ((EngineConfig{.n_bits = 8, .sparsity = Sparsity::kZeroSkip}.label()),
            "proposed/N=8/zero-skip");
  EXPECT_EQ((EngineConfig{.n_bits = 8, .backend = MacBackend::kScalar,
                          .sparsity = Sparsity::kDense}.label()),
            "proposed/N=8/scalar/dense");
}

TEST(EngineConfigJson, SparsityStringsRoundTripAndAliasParses) {
  for (const Sparsity s : {Sparsity::kDense, Sparsity::kZeroSkip, Sparsity::kAuto})
    EXPECT_EQ(sparsity_from_string(to_string(s)), s);
  // The underscore spelling is accepted on input (env vars and flags both
  // read naturally); the canonical output spelling stays "zero-skip".
  EXPECT_EQ(sparsity_from_string("zero_skip"), Sparsity::kZeroSkip);
  EXPECT_THROW(sparsity_from_string("sparse"), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsBadBackendEnum) {
  EngineConfig cfg;
  cfg.backend = static_cast<MacBackend>(42);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsBadSparsityEnum) {
  EngineConfig cfg;
  cfg.sparsity = static_cast<Sparsity>(42);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace scnn::nn
