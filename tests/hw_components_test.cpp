#include "hw/components.hpp"

#include <gtest/gtest.h>

namespace scnn::hw {
namespace {

TEST(Components, CalibrationPointsMatchPaperTable2) {
  // The model must reproduce its own calibration anchors (paper Table 2,
  // TSMC 45 nm) to within rounding of the published values.
  EXPECT_NEAR(lfsr_register(5).area_um2, 51.5, 0.2);
  EXPECT_NEAR(lfsr_register(9).area_um2, 89.6, 0.2);
  EXPECT_NEAR(lfsr_comparator(5).area_um2, 19.1, 0.2);
  EXPECT_NEAR(lfsr_comparator(9).area_um2, 37.0, 0.2);
  EXPECT_NEAR(halton_register(5).area_um2, 87.7, 0.2);
  EXPECT_NEAR(halton_register(9).area_um2, 203.7, 0.2);
  EXPECT_NEAR(fsm_mux_register(5).area_um2, 31.2, 0.2);
  EXPECT_NEAR(fsm_mux_register(9).area_um2, 60.9, 0.2);
  EXPECT_NEAR(fsm_mux_combinational(5).area_um2, 6.0, 0.1);
  EXPECT_NEAR(fsm_mux_combinational(9).area_um2, 11.8, 0.1);
  EXPECT_NEAR(down_counter(5).area_um2, 38.8, 0.2);
  EXPECT_NEAR(down_counter(9).area_um2, 80.6, 0.2);
  EXPECT_NEAR(binary_multiplier(5).area_um2, 88.9, 1.0);
  EXPECT_NEAR(binary_multiplier(9).area_um2, 305.0, 2.0);
  EXPECT_NEAR(binary_accumulator(7).area_um2, 66.3, 0.5);
  EXPECT_NEAR(binary_accumulator(11).area_um2, 110.1, 0.5);
  EXPECT_NEAR(ed_register(9).area_um2, 346.8, 0.5);
  EXPECT_NEAR(ed_combinational(9).area_um2, 226.3, 0.5);
  EXPECT_NEAR(parallel_counter(32).area_um2, 136.0, 0.5);
  EXPECT_NEAR(ones_counter(9, 8).area_um2, 108.5, 1.0);
  EXPECT_NEAR(ones_counter(9, 16).area_um2, 174.1, 1.0);
  EXPECT_NEAR(ones_counter(9, 32).area_um2, 239.4, 1.0);
  EXPECT_NEAR(xnor_gate().area_um2, 1.8, 0.01);
}

TEST(Components, AreaMonotoneInPrecision) {
  for (int n = 3; n < 12; ++n) {
    EXPECT_LT(lfsr_register(n).area_um2, lfsr_register(n + 1).area_um2);
    EXPECT_LT(binary_multiplier(n).area_um2, binary_multiplier(n + 1).area_um2);
    EXPECT_LT(down_counter(n).area_um2, down_counter(n + 1).area_um2);
    EXPECT_LT(up_down_counter(n).area_um2, up_down_counter(n + 1).area_um2);
  }
}

TEST(Components, MultiplierGrowsSuperlinearly) {
  // The quadratic binary multiplier is why SC's area edge widens with
  // precision (Sec. 4.3.1).
  const double r5 = binary_multiplier(10).area_um2 / binary_multiplier(5).area_um2;
  EXPECT_GT(r5, 3.0);  // quadratic: ~4x for 2x precision
  const double lfsr_ratio = lfsr_register(10).area_um2 / lfsr_register(5).area_um2;
  EXPECT_LT(lfsr_ratio, 2.2);  // linear-ish
}

TEST(Components, LfsrPowerDensityExceedsPlainLogic) {
  // Sec. 4.3.2: LFSRs burn disproportionate power per area.
  const auto l = lfsr_register(9);
  const auto f = fsm_mux_register(9);
  EXPECT_GT(l.power_mw / l.area_um2, 2.0 * f.power_mw / f.area_um2);
}

TEST(Components, PowerTracksAreaForPlainLogic) {
  const auto a = binary_multiplier(9);
  const auto b = down_counter(9);
  EXPECT_NEAR(a.power_mw / a.area_um2, b.power_mw / b.area_um2, 1e-9);
}

TEST(Components, CostArithmetic) {
  const Cost a{10.0, 1.0}, b{5.0, 0.5};
  const Cost s = a + b;
  EXPECT_DOUBLE_EQ(s.area_um2, 15.0);
  EXPECT_DOUBLE_EQ(s.power_mw, 1.5);
  const Cost d = a * 3.0;
  EXPECT_DOUBLE_EQ(d.area_um2, 30.0);
  Cost acc;
  acc += a;
  acc += b;
  EXPECT_DOUBLE_EQ(acc.area_um2, 15.0);
}

TEST(Components, OnesCounterFlooredForSmallB) {
  // The log fit extrapolates negative below b=8; the model floors it at a
  // popcount tree so small-b designs stay physical.
  EXPECT_GT(ones_counter(9, 2).area_um2, 0.0);
  EXPECT_GE(ones_counter(9, 4).area_um2, parallel_counter(4).area_um2);
}

}  // namespace
}  // namespace scnn::hw
