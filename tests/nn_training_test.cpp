#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/dense.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"

namespace scnn::nn {
namespace {

TEST(Training, LossDecreasesOnToyProblem) {
  // Tiny linearly-separable 2-class problem through a Dense-only net.
  Network net;
  auto& d = net.add<Dense>(2, 2);
  d.init_weights(3);
  Tensor x(40, 2, 1, 1);
  std::vector<int> labels(40);
  common::SplitMix64 rng(4);
  for (int i = 0; i < 40; ++i) {
    const int cls = i % 2;
    labels[static_cast<std::size_t>(i)] = cls;
    x.at(i, 0, 0, 0) = static_cast<float>(rng.next_gaussian() * 0.3 + (cls ? 1.5 : -1.5));
    x.at(i, 1, 0, 0) = static_cast<float>(rng.next_gaussian() * 0.3);
  }
  SgdTrainer trainer({.epochs = 20, .batch_size = 8, .learning_rate = 0.1f});
  const auto stats = trainer.train(net, x, labels);
  EXPECT_LT(stats.back().mean_loss, stats.front().mean_loss * 0.5);
  EXPECT_GE(stats.back().train_accuracy, 0.95);
}

TEST(Training, MnistNetLearnsSyntheticDigits) {
  // Small but real: the LeNet-style net must reach high accuracy on a slice
  // of the synthetic digit task within a few epochs.
  const auto train = data::make_synthetic_digits({.count = 300, .seed = 10});
  const auto test = data::make_synthetic_digits({.count = 100, .seed = 20});
  Network net = make_mnist_net(28, 1, 42);
  SgdTrainer trainer({.epochs = 6, .batch_size = 20, .learning_rate = 0.01f});
  trainer.train(net, train.images, train.labels);
  const double acc = net.accuracy(test.images, test.labels);
  EXPECT_GE(acc, 0.8) << "synthetic digits should be learnable quickly";
}

TEST(Training, FineTuningImprovesQuantizedAccuracy) {
  // The paper's central fine-tuning claim in miniature: training with the
  // quantized forward pass recovers accuracy lost to low-precision
  // arithmetic. Uses the fixed engine at an aggressive 4-bit precision.
  const auto train = data::make_synthetic_digits({.count = 300, .seed = 30});
  const auto test = data::make_synthetic_digits({.count = 120, .seed = 40});
  Network net = make_mnist_net(28, 1, 77);
  SgdTrainer pre({.epochs = 6, .batch_size = 20, .learning_rate = 0.01f});
  pre.train(net, train.images, train.labels);
  calibrate_network(net, batch_slice(train.images, 0, 50));

  EnginePool pool;
  const MacEngine* e = pool.get({.kind = EngineKind::kFixed, .n_bits = 4});
  set_conv_engine(net, e);
  const double acc_before = net.accuracy(test.images, test.labels);

  SgdTrainer tune({.epochs = 3, .batch_size = 20, .learning_rate = 0.004f});
  tune.train(net, train.images, train.labels);  // quantized fwd, STE bwd
  const double acc_after = net.accuracy(test.images, test.labels);
  set_conv_engine(net, nullptr);

  EXPECT_GE(acc_after + 1e-9, acc_before);
  EXPECT_GE(acc_after, 0.5);
}

TEST(Training, DeterministicAcrossRuns) {
  const auto train = data::make_synthetic_digits({.count = 100, .seed = 50});
  auto run = [&]() {
    Network net = make_mnist_net(28, 1, 1);
    SgdTrainer t({.epochs = 2, .batch_size = 10, .learning_rate = 0.05f});
    const auto stats = t.train(net, train.images, train.labels);
    return stats.back().mean_loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace scnn::nn
