// Equivalence property of the two quantized conv implementations: for every
// engine kind, stride, padding, odd geometry, and thread count, the im2col
// path (cached weight codes + patch buffer + batched mac_rows) produces
// logits AND MacStats bit-identical to the direct per-element reference
// path. Lives in the `parallel`-labeled binary so the TSan build exercises
// the per-thread ScratchArena.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "common/scratch_arena.hpp"
#include "common/thread_pool.hpp"
#include "nn/conv2d.hpp"
#include "nn/mac_engine.hpp"

namespace scnn {
namespace {

bool bit_identical(const nn::Tensor& a, const nn::Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data().data(), b.data().data(), a.size() * sizeof(float)) == 0;
}

nn::Tensor random_input(int n, int c, int h, int w, std::uint64_t seed) {
  nn::Tensor t(n, c, h, w);
  common::SplitMix64 rng(seed);
  for (auto& v : t.data()) v = static_cast<float>(rng.next_gaussian());
  return t;
}

struct Geometry {
  int in_ch, out_ch, kernel, h, w;
};

TEST(ConvIm2col, BitIdenticalToDirectAcrossKindsStridesPadsThreads) {
  // Odd, non-square geometries on purpose; kernel 3 keeps the sweep fast.
  const Geometry geoms[] = {{2, 5, 3, 11, 9}, {3, 4, 3, 7, 13}};
  common::ThreadPool pool4(4);

  for (const nn::EngineKind kind : {nn::EngineKind::kFixed, nn::EngineKind::kScLfsr,
                                    nn::EngineKind::kProposed}) {
    const auto engine = nn::make_engine({.kind = kind, .n_bits = 6});
    for (const Geometry& g : geoms) {
      for (int stride = 1; stride <= 3; ++stride) {
        for (int pad = 0; pad <= 2; ++pad) {
          if (g.h + 2 * pad < g.kernel || g.w + 2 * pad < g.kernel) continue;
          nn::Conv2D conv(g.in_ch, g.out_ch, g.kernel, stride, pad);
          conv.init_weights(17 * static_cast<std::uint64_t>(stride + 3 * pad) + 5);
          const nn::Tensor x =
              random_input(2, g.in_ch, g.h, g.w,
                           1000 + static_cast<std::uint64_t>(stride * 10 + pad));
          conv.calibrate_scales(x);
          conv.set_engine(engine.get());

          conv.set_im2col(false);
          const nn::Tensor ref = conv.forward(x);
          const nn::MacStats ref_stats = conv.last_forward_stats();
          ASSERT_GT(ref_stats.macs, 0u);

          for (common::ThreadPool* pool : {static_cast<common::ThreadPool*>(nullptr),
                                           &pool4}) {
            conv.set_thread_pool(pool);
            conv.set_im2col(true);
            const nn::Tensor got = conv.forward(x);
            const nn::MacStats stats = conv.last_forward_stats();
            const std::string label =
                nn::to_string(kind) + " stride=" + std::to_string(stride) +
                " pad=" + std::to_string(pad) +
                " threads=" + std::to_string(pool ? 4 : 1);
            EXPECT_TRUE(bit_identical(ref, got)) << "logits differ: " << label;
            EXPECT_EQ(stats.macs, ref_stats.macs) << label;
            EXPECT_EQ(stats.products, ref_stats.products) << label;
            EXPECT_EQ(stats.saturations, ref_stats.saturations) << label;

            // The direct path must agree with itself under threading too
            // (regression guard for the kept baseline).
            conv.set_im2col(false);
            EXPECT_TRUE(bit_identical(ref, conv.forward(x)))
                << "direct-path logits differ: " << label;
          }
          conv.set_thread_pool(nullptr);
        }
      }
    }
  }
}

TEST(ConvIm2col, WeightCodeCacheInvalidatesOnMutationAndRecalibration) {
  nn::Conv2D conv(1, 2, 3);
  conv.init_weights(7);
  const nn::Tensor x = random_input(1, 1, 6, 6, 11);
  conv.calibrate_scales(x);

  const auto codes_a = conv.quantized_weights(8);
  EXPECT_EQ(codes_a, conv.quantized_weights(8));  // served from cache

  // Precision change re-quantizes.
  EXPECT_NE(codes_a, conv.quantized_weights(4));

  // Weight mutation through the mutable accessor invalidates.
  conv.mutable_weight().fill(0.25f);
  const auto codes_b = conv.quantized_weights(8);
  EXPECT_NE(codes_a, codes_b);
  for (const auto c : codes_b) EXPECT_EQ(c, codes_b.front());

  // Re-calibration (scale change) invalidates even with unchanged weights.
  conv.mutable_weight().fill(3.0f);
  conv.calibrate_scales(x);
  const auto codes_c = conv.quantized_weights(8);
  EXPECT_EQ(conv.weight_scale(), 4.0f);
  for (const auto c : codes_c) EXPECT_EQ(c, common::quantize(3.0 / 4.0, 8));
}

TEST(ScratchArena, FrameReuseAndGrowth) {
  common::ScratchArena arena;
  {
    const auto frame = arena.frame();
    (void)frame;
    auto a = arena.take<std::int32_t>(100);
    auto b = arena.take<std::int64_t>(50);
    ASSERT_EQ(a.size(), 100u);
    ASSERT_EQ(b.size(), 50u);
    // Distinct takes in one frame never alias.
    const auto* a_end = reinterpret_cast<const std::byte*>(a.data() + a.size());
    const auto* b_begin = reinterpret_cast<const std::byte*>(b.data());
    EXPECT_LE(a_end, b_begin);
    for (auto& v : a) v = 1;
    for (auto& v : b) v = 2;
    EXPECT_EQ(a[99], 1);
    EXPECT_EQ(b[0], 2);
  }
  const std::size_t cap = arena.capacity_bytes();
  EXPECT_GT(cap, 0u);

  // A same-sized frame reuses the chunk; a bigger one grows then consolidates.
  { const auto f = arena.frame(); (void)f; (void)arena.take<std::int32_t>(100); }
  EXPECT_EQ(arena.capacity_bytes(), cap);
  {
    const auto f = arena.frame();
    (void)f;
    auto big = arena.take<std::int32_t>(100000);
    big[99999] = 42;
    EXPECT_EQ(big[99999], 42);
  }
  { const auto f = arena.frame(); (void)f; }
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_GE(arena.capacity_bytes(), 100000 * sizeof(std::int32_t));
}

TEST(ScratchArena, ThreadLocalArenasAreDistinct) {
  common::ScratchArena* main_arena = &common::ScratchArena::thread_local_arena();
  common::ScratchArena* worker_arena = nullptr;
  common::ThreadPool pool(2);
  pool.run_batch({[&] { worker_arena = &common::ScratchArena::thread_local_arena(); }});
  ASSERT_NE(worker_arena, nullptr);
  EXPECT_NE(main_arena, worker_arena);
}

}  // namespace
}  // namespace scnn
