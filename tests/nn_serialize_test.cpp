#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "nn/network.hpp"

namespace scnn::nn {
namespace {

namespace fs = std::filesystem;

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -j runs each case as its own process, and a
    // shared directory lets concurrent cases clobber each other's m.ckpt.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("scnn_ckpt_test_") + info->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path(const char* name) { return (dir_ / name).string(); }
  fs::path dir_;
};

TEST_F(SerializeTest, RoundTripRestoresExactWeights) {
  Network a = make_mnist_net(28, 1, 7);
  save_checkpoint(a, path("m.ckpt"));
  Network b = make_mnist_net(28, 1, 999);  // different init
  load_checkpoint(b, path("m.ckpt"));
  const auto pa = a.save_parameters();
  const auto pb = b.save_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]) << i;
}

TEST_F(SerializeTest, CheckpointExists) {
  EXPECT_FALSE(checkpoint_exists(path("missing.ckpt")));
  Network a = make_mnist_net();
  save_checkpoint(a, path("m.ckpt"));
  EXPECT_TRUE(checkpoint_exists(path("m.ckpt")));
}

TEST_F(SerializeTest, RejectsBadMagic) {
  {
    std::ofstream f(path("bad.ckpt"), std::ios::binary);
    f << "NOTSCNN!restoffile";
  }
  Network net = make_mnist_net();
  EXPECT_THROW(load_checkpoint(net, path("bad.ckpt")), std::runtime_error);
  EXPECT_FALSE(checkpoint_exists(path("bad.ckpt")));
}

TEST_F(SerializeTest, RejectsTopologyMismatch) {
  Network mnist = make_mnist_net();
  save_checkpoint(mnist, path("m.ckpt"));
  Network cifar = make_cifar_net();
  EXPECT_THROW(load_checkpoint(cifar, path("m.ckpt")), std::invalid_argument);
}

TEST_F(SerializeTest, RejectsCorruptedPayload) {
  Network net = make_mnist_net();
  save_checkpoint(net, path("m.ckpt"));
  // Flip one payload byte.
  std::fstream f(path("m.ckpt"), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(100);
  f.put(static_cast<char>(0x5A));
  f.close();
  EXPECT_THROW(load_checkpoint(net, path("m.ckpt")), std::runtime_error);
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  Network net = make_mnist_net();
  save_checkpoint(net, path("m.ckpt"));
  const auto full = fs::file_size(path("m.ckpt"));
  fs::resize_file(path("m.ckpt"), full / 2);
  EXPECT_THROW(load_checkpoint(net, path("m.ckpt")), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  Network net = make_mnist_net();
  EXPECT_THROW(load_checkpoint(net, path("nope.ckpt")), std::runtime_error);
}

}  // namespace
}  // namespace scnn::nn
