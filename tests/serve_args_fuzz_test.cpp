// Property/fuzz coverage for the serving-plane CLI surface added with the
// lock-free admission ring: queue_kind_from_string / priority_from_string
// must never crash on arbitrary text (the only permitted failure is
// std::invalid_argument naming the offending value), every enumerator
// round-trips through to_string, and Args streams carrying --queue= /
// --priority= flags survive parse → to_tokens → parse unchanged. Fixed-seed
// mt19937_64 so failures reproduce exactly, mirroring cli_args_fuzz_test.
#include "serve/server.hpp"
#include "tools/cli_args.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace scnn::serve {
namespace {

constexpr std::uint64_t kSeed = 0x5c1717u;  // deterministic: reruns == CI

/// Arbitrary text biased toward near-misses of the real enumerator names so
/// both the accept and reject paths fire.
std::string random_text(std::mt19937_64& rng) {
  static const std::vector<std::string> near{
      "high", "normal", "batch",  "mutex", "lockfree", "mixed",
      "HIGH", "lock",   "batchy", "",      "norm",     "lock-free"};
  static const std::string alphabet = "abcdefghijklmnopqrstuvwxyz-_ =";
  std::uniform_int_distribution<int> shape(0, 3);
  if (shape(rng) != 0) {
    std::uniform_int_distribution<std::size_t> pick(0, near.size() - 1);
    return near[pick(rng)];
  }
  std::uniform_int_distribution<int> len(0, 10);
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::string s;
  const int n = len(rng);
  for (int i = 0; i < n; ++i) s += alphabet[pick(rng)];
  return s;
}

TEST(ServeArgsFuzz, PriorityFromStringNeverCrashesAndNamesOffenders) {
  std::mt19937_64 rng(kSeed);
  int accepted = 0, rejected = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    const std::string text = random_text(rng);
    try {
      const Priority p = priority_from_string(text);
      ++accepted;
      // Whatever parses must round-trip to the exact same spelling.
      ASSERT_EQ(to_string(p), text);
    } catch (const std::invalid_argument& e) {
      ++rejected;  // the only failure mode the parser permits
      // The message must quote the rejected value so CLI errors are
      // actionable ("--priority = \"xyz\" (expected ...)").
      ASSERT_NE(std::string(e.what()).find("\"" + text + "\""),
                std::string::npos)
          << e.what();
    }
  }
  EXPECT_GT(accepted, 1000) << "generator produced too few valid inputs";
  EXPECT_GT(rejected, 1000) << "generator produced too few invalid inputs";
}

TEST(ServeArgsFuzz, QueueKindFromStringNeverCrashesAndNamesOffenders) {
  std::mt19937_64 rng(kSeed ^ 0x9e37u);
  int accepted = 0, rejected = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    const std::string text = random_text(rng);
    try {
      const QueueKind k = queue_kind_from_string(text);
      ++accepted;
      ASSERT_EQ(to_string(k), text);
    } catch (const std::invalid_argument& e) {
      ++rejected;
      ASSERT_NE(std::string(e.what()).find("\"" + text + "\""),
                std::string::npos)
          << e.what();
    }
  }
  EXPECT_GT(accepted, 1000) << "generator produced too few valid inputs";
  EXPECT_GT(rejected, 1000) << "generator produced too few invalid inputs";
}

TEST(ServeArgsFuzz, EveryEnumeratorRoundTrips) {
  for (const Priority p : {Priority::kHigh, Priority::kNormal, Priority::kBatch})
    EXPECT_EQ(priority_from_string(to_string(p)), p) << to_string(p);
  for (const QueueKind k : {QueueKind::kMutex, QueueKind::kLockFree})
    EXPECT_EQ(queue_kind_from_string(to_string(k)), k) << to_string(k);
}

/// Args streams carrying the serve flags: parse → to_tokens → parse is the
/// identity, and the values land in get() exactly as written — including
/// invalid spellings, which the Args layer passes through verbatim for
/// cmd_serve to reject with a flag-prefixed message.
TEST(ServeArgsFuzz, QueueAndPriorityFlagsSurviveArgsRoundTrip) {
  std::mt19937_64 rng(kSeed ^ 0xfeedu);
  for (int iter = 0; iter < 5000; ++iter) {
    const std::string queue = random_text(rng);
    const std::string priority = random_text(rng);
    std::vector<std::string> tokens{"serve", "--queue=" + queue,
                                    "--priority=" + priority, "--requests=8"};
    cli::Args args = cli::Args::parse(tokens);
    ASSERT_EQ(args.get("queue", ""), queue);
    ASSERT_EQ(args.get("priority", ""), priority);
    const cli::Args again = cli::Args::parse(args.to_tokens());
    ASSERT_EQ(again, args);
    ASSERT_EQ(again.get("queue", ""), queue);
    ASSERT_EQ(again.get("priority", ""), priority);

    // The downstream contract cmd_serve relies on: the value either maps to
    // an enumerator or throws std::invalid_argument — nothing else.
    try {
      (void)queue_kind_from_string(again.get("queue", "lockfree"));
    } catch (const std::invalid_argument&) {
    }
    try {
      (void)priority_from_string(again.get("priority", "normal"));
    } catch (const std::invalid_argument&) {
    }
  }
}

}  // namespace
}  // namespace scnn::serve
