// Minimal subcommand + --key=value argument parser for scnn_cli.
//
// Grammar:   <command> [positional ...] [--flag | --key=value ...]
//
// - The first non-flag token is the subcommand; later non-flag tokens are
//   positionals (order preserved).
// - Flags may appear anywhere after the command and take the forms
//   "--key=value" or bare "--flag" (boolean). A literal "--" ends flag
//   parsing; everything after it is positional.
// - Malformed input (empty flag name, duplicate flag, "-x" short options,
//   non-integer value where an int is required, unknown flag when a
//   whitelist is given) throws ArgError with a message naming the token.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace scnn::cli {

class ArgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Args {
 public:
  /// Parse main()'s argv (argv[0] is skipped).
  static Args parse(int argc, const char* const* argv);
  /// Parse pre-split tokens (no program name).
  static Args parse(const std::vector<std::string>& tokens);

  [[nodiscard]] const std::string& command() const { return command_; }
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  /// Positional i, or `fallback` when absent.
  [[nodiscard]] std::string positional(std::size_t i, const std::string& fallback) const;

  [[nodiscard]] bool has(const std::string& flag) const;
  /// Value of --flag=value, or `fallback` when absent. A bare boolean
  /// "--flag" yields the empty string.
  [[nodiscard]] std::string get(const std::string& flag, const std::string& fallback) const;
  /// Integer value of --flag=value; throws ArgError on non-integer text.
  [[nodiscard]] int get_int(const std::string& flag, int fallback) const;

  /// Throw ArgError naming the offender unless every given flag is allowed.
  void require_known(const std::vector<std::string>& allowed) const;

  /// Render back to a token stream `parse` accepts: command, flags in key
  /// order ("--key" when the value is empty, else "--key=value"), then a
  /// literal "--" followed by the positionals (emitted only when there are
  /// any, so positionals survive re-parsing even if they look like flags).
  /// A command that itself looks like a flag — possible when the original
  /// input led with "--" — is moved after the separator as well.
  /// parse(to_tokens()) == *this for every Args that `parse` can produce.
  [[nodiscard]] std::vector<std::string> to_tokens() const;

  [[nodiscard]] bool operator==(const Args& other) const = default;

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> flags_;
};

}  // namespace scnn::cli
