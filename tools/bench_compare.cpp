// bench_compare — the perf-trajectory gate.
//
//   bench_compare BASE.json HEAD.json [--threshold=0.10] [--out=DELTA.json]
//
// Diffs two BENCH_*.json reports (the flat obs::JsonReport schema every
// bench binary and `scnn_cli --metrics-out` emit), prints a per-metric delta
// table, and exits by the same three-band contract the in-binary bench gates
// use:
//
//   OK          every gated metric within threshold          -> exit 0
//   SKIP        reports not comparable (different benchmark,  -> exit 0, loud
//               missing/mismatched cpu fingerprint)
//   REGRESSION  a higher-better metric fell, or a lower-      -> exit 1
//               better metric rose, by more than threshold
//
// Only direction-classified metrics gate (rates/speedups higher-better, time
// units lower-better — see obs::metric_direction); counts and config echoes
// are printed as context but never fail the build. --out writes the delta as
// a JSON artifact for CI upload.
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "common/table.hpp"
#include "obs/report_diff.hpp"

namespace {

using scnn::common::Table;
using namespace scnn::obs;

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare BASE.json HEAD.json [--threshold=FRAC] "
               "[--out=DELTA.json]\n"
               "  FRAC is the allowed relative regression (default 0.10 = 10%%)\n");
  return 2;
}

const char* direction_label(MetricDirection d) {
  switch (d) {
    case MetricDirection::kHigherBetter: return "higher";
    case MetricDirection::kLowerBetter: return "lower";
    case MetricDirection::kInformational: return "info";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path, head_path, out_path;
  double threshold = 0.10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      try {
        threshold = std::stod(arg.substr(12));
      } catch (...) {
        return usage();
      }
      if (threshold < 0.0 || threshold >= 1.0) {
        std::fprintf(stderr, "bench_compare: threshold %.3f out of range [0, 1)\n",
                     threshold);
        return 2;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n", arg.c_str());
      return usage();
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (head_path.empty()) {
      head_path = arg;
    } else {
      return usage();
    }
  }
  if (base_path.empty() || head_path.empty()) return usage();

  const std::optional<ParsedReport> base = load_report(base_path);
  if (!base) {
    std::fprintf(stderr, "bench_compare: cannot read/parse %s\n", base_path.c_str());
    return 2;
  }
  const std::optional<ParsedReport> head = load_report(head_path);
  if (!head) {
    std::fprintf(stderr, "bench_compare: cannot read/parse %s\n", head_path.c_str());
    return 2;
  }

  const CompareResult result = compare_reports(*base, *head, threshold);

  std::printf("bench_compare: %s (base %s", base->benchmark.c_str(), base_path.c_str());
  if (const std::string* sha = base->meta_value("git_sha"))
    std::printf(" @ %s", sha->c_str());
  std::printf(") vs head %s", head_path.c_str());
  if (const std::string* sha = head->meta_value("git_sha"))
    std::printf(" @ %s", sha->c_str());
  std::printf(", threshold %.1f%%\n", threshold * 100.0);

  if (result.band == CompareBand::kSkip) {
    // Loud, not fatal: cross-machine numbers must never fail a build, but a
    // silently green gate would be worse than none.
    std::printf("=============================================================\n");
    std::printf("SKIP: %s\n", result.skip_reason.c_str());
    std::printf("=============================================================\n");
  } else {
    Table t({"metric", "unit", "dir", "base", "head", "delta %", "verdict"});
    for (const MetricDelta& d : result.deltas) {
      if (d.missing_in_head) {
        t.add_row({d.name, d.unit, direction_label(d.direction), Table::fmt(d.base, 4),
                   "-", "-", "missing"});
        continue;
      }
      const double delta_pct = (d.ratio - 1.0) * 100.0;
      t.add_row({d.name, d.unit, direction_label(d.direction), Table::fmt(d.base, 4),
                 Table::fmt(d.head, 4), Table::fmt(delta_pct, 2),
                 d.regressed                                        ? "REGRESSED"
                 : d.direction == MetricDirection::kInformational   ? ""
                                                                    : "ok"});
    }
    t.print(std::cout);
    if (result.band == CompareBand::kRegression)
      std::printf("REGRESSION: %d metric(s) beyond the %.1f%% threshold\n",
                  result.regressions(), threshold * 100.0);
    else
      std::printf("OK: no gated metric regressed beyond %.1f%%\n", threshold * 100.0);
  }

  if (!out_path.empty()) {
    const std::string body = compare_result_to_json(result, base_path, head_path);
    if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "bench_compare: cannot open %s for writing\n",
                   out_path.c_str());
      return 2;
    }
  }
  return result.band == CompareBand::kRegression ? 1 : 0;
}
