#include "tools/cli_args.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace scnn::cli {

Args Args::parse(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(argc > 0 ? static_cast<std::size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return parse(tokens);
}

Args Args::parse(const std::vector<std::string>& tokens) {
  Args out;
  bool flags_done = false;
  for (const std::string& tok : tokens) {
    if (!flags_done && tok == "--") {
      flags_done = true;
      continue;
    }
    if (!flags_done && tok.rfind("--", 0) == 0) {
      const std::string body = tok.substr(2);
      const std::size_t eq = body.find('=');
      const std::string key = body.substr(0, eq);
      const std::string value = eq == std::string::npos ? "" : body.substr(eq + 1);
      if (key.empty()) throw ArgError("malformed flag '" + tok + "'");
      if (out.flags_.count(key)) throw ArgError("duplicate flag '--" + key + "'");
      out.flags_[key] = value;
      continue;
    }
    if (!flags_done && tok.size() > 1 && tok[0] == '-' &&
        !(tok.size() > 1 && (std::isdigit(static_cast<unsigned char>(tok[1])) != 0)))
      throw ArgError("short options are not supported: '" + tok +
                     "' (use --name or --name=value)");
    if (out.command_.empty())
      out.command_ = tok;
    else
      out.positionals_.push_back(tok);
  }
  return out;
}

std::string Args::positional(std::size_t i, const std::string& fallback) const {
  return i < positionals_.size() ? positionals_[i] : fallback;
}

bool Args::has(const std::string& flag) const { return flags_.count(flag) != 0; }

std::string Args::get(const std::string& flag, const std::string& fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

int Args::get_int(const std::string& flag, int fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty()) throw ArgError("flag '--" + flag + "' needs an integer value");
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0')
    throw ArgError("flag '--" + flag + "': '" + v + "' is not an integer");
  return static_cast<int>(n);
}

namespace {

/// Would `parse` treat this token as flag syntax (or the "--" separator)?
bool looks_like_flag(const std::string& tok) {
  if (tok.rfind("--", 0) == 0) return true;  // includes the literal "--"
  return tok.size() > 1 && tok[0] == '-' &&
         std::isdigit(static_cast<unsigned char>(tok[1])) == 0;
}

}  // namespace

std::vector<std::string> Args::to_tokens() const {
  std::vector<std::string> out;
  // A command can itself look like a flag when the original input started
  // with the "--" separator; such a command must go after the separator too.
  const bool command_needs_separator = looks_like_flag(command_);
  if (!command_.empty() && !command_needs_separator) out.push_back(command_);
  for (const auto& [key, value] : flags_)
    out.push_back(value.empty() ? "--" + key : "--" + key + "=" + value);
  if (command_needs_separator || !positionals_.empty()) {
    out.emplace_back("--");
    if (command_needs_separator) out.push_back(command_);
    out.insert(out.end(), positionals_.begin(), positionals_.end());
  }
  return out;
}

void Args::require_known(const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : flags_) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::string msg = "unknown flag '--" + key + "' for command '" + command_ +
                        "' (accepted:";
      if (allowed.empty()) {
        msg += " none";
      } else {
        for (const std::string& a : allowed) msg += " --" + a;
      }
      throw ArgError(msg + ")");
    }
  }
}

}  // namespace scnn::cli
