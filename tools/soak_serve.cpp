// soak_serve — closed+open-loop chaos driver for the serving plane.
//
// Hammers one two-tenant serve::Server ("default" + "canary") with a mix of
// steady traffic, mixed-tenant bursts (including the run's one mid-flight
// hot swap of the canary checkpoint), deadline storms, reject bursts,
// pause/resume flaps, and injected worker exceptions (a ChaosLayer appended
// to every shard's network that throws when armed), while verifying every
// kOk response bit-for-bit against direct InferenceSession::forward on the
// same sample — canary responses against the checkpoint generation their
// epoch names. The run ends with a clean quiesce: 20 default + 10 canary
// probe requests that must all serve kOk bit-exactly (the canary ones on
// the post-swap generation), an on-demand flight dump that must round-trip
// through obs::json, and a drain() that must not rethrow.
//
// Telemetry: a SnapshotLogger appends <prefix>_snapshots.jsonl time series
// during the run, and the final registry + driver counters land in
// BENCH_soak.json for tools/bench_compare.
//
// Usage:
//   soak_serve [--duration-s=20] [--queue=lockfree|mutex] [--workers=2]
//              [--closed=3] [--open-rps=200] [--capacity=32] [--max-batch=4]
//              [--out-prefix=soak]
//
// Exit status: nonzero on any logits mismatch, an error response that was
// not chaos-injected, a failed clean probe, an unparseable flight dump, or
// a hot swap with no verified post-swap canary response.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic_digits.hpp"
#include "nn/inference_session.hpp"
#include "nn/layer.hpp"
#include "nn/network.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/snapshot_log.hpp"
#include "serve/server.hpp"
#include "tools/cli_args.hpp"

namespace {

using scnn::nn::Tensor;
using scnn::serve::Priority;
using scnn::serve::Response;
using scnn::serve::Server;
using scnn::serve::ServerOptions;
using scnn::serve::Status;
using scnn::serve::Ticket;
using Clock = std::chrono::steady_clock;

/// Armed fault budget: each arm makes exactly one ChaosLayer::forward throw.
std::atomic<int> g_poison_armed{0};
std::atomic<int> g_poison_fired{0};

/// Identity pass-through appended to every shard's network. Bit-neutral when
/// idle; when armed, one forward (so one whole batch) throws — the server
/// must resolve that batch kError and keep the worker alive.
class ChaosLayer final : public scnn::nn::Layer {
 public:
  Tensor forward(const Tensor& x) override {
    int armed = g_poison_armed.load(std::memory_order_relaxed);
    while (armed > 0) {
      if (g_poison_armed.compare_exchange_weak(armed, armed - 1)) {
        g_poison_fired.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error("chaos: injected worker fault");
      }
    }
    return x;
  }
  Tensor backward(const Tensor& g) override { return g; }
  [[nodiscard]] std::string name() const override { return "chaos"; }
};

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

Priority priority_of(std::uint64_t i) {
  if (i % 4 == 0) return Priority::kHigh;
  if (i % 4 == 3) return Priority::kBatch;
  return Priority::kNormal;
}

/// Outcome tallies shared by every client thread and the ticket reaper.
struct Tally {
  std::atomic<std::uint64_t> submitted{0}, ok{0}, mismatched{0}, shed{0},
      rejected{0}, timed_out{0}, chaos_errors{0}, foreign_errors{0};

  void account(const Response& r, const Tensor& want) {
    switch (r.status) {
      case Status::kOk:
        if (bit_identical(r.logits, want))
          ok.fetch_add(1, std::memory_order_relaxed);
        else
          mismatched.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::kShed: shed.fetch_add(1, std::memory_order_relaxed); break;
      case Status::kQueueFull:
      case Status::kShutdown:
        rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::kTimedOut:
        timed_out.fetch_add(1, std::memory_order_relaxed);
        break;
      case Status::kError:
        if (r.error.find("chaos") != std::string::npos)
          chaos_errors.fetch_add(1, std::memory_order_relaxed);
        else
          foreign_errors.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
};

/// Tickets submitted fire-and-forget (open loop, storms, mixed-tenant
/// bursts) waiting to be resolved and verified off the submission path.
struct ReapQueue {
  struct Item {
    Ticket ticket;
    int idx = 0;        ///< sample index (names the reference logits)
    bool canary = false;  ///< routed to the "canary" tenant (epoch-aware ref)
  };
  std::mutex mu;
  std::deque<Item> pending;
  std::atomic<bool> closed{false};

  void push(Ticket t, int idx, bool canary = false) {
    std::lock_guard<std::mutex> lk(mu);
    pending.push_back(Item{std::move(t), idx, canary});
  }
  bool pop(Item& out) {
    std::lock_guard<std::mutex> lk(mu);
    if (pending.empty()) return false;
    out = std::move(pending.front());
    pending.pop_front();
    return true;
  }
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--duration-s=20] [--queue=lockfree|mutex] "
               "[--workers=2] [--closed=3] [--open-rps=200] [--capacity=32] "
               "[--max-batch=4] [--out-prefix=soak]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using scnn::cli::ArgError;
  using scnn::cli::Args;

  int duration_s = 20, workers = 2, closed_clients = 3, open_rps = 200;
  int capacity = 32, max_batch = 4;
  std::string out_prefix = "soak";
  scnn::serve::QueueKind queue_kind = scnn::serve::QueueKind::kLockFree;
  try {
    const Args args = Args::parse(argc, argv);
    args.require_known({"duration-s", "queue", "workers", "closed", "open-rps",
                        "capacity", "max-batch", "out-prefix"});
    duration_s = args.get_int("duration-s", duration_s);
    workers = args.get_int("workers", workers);
    closed_clients = args.get_int("closed", closed_clients);
    open_rps = args.get_int("open-rps", open_rps);
    capacity = args.get_int("capacity", capacity);
    max_batch = args.get_int("max-batch", max_batch);
    out_prefix = args.get("out-prefix", out_prefix);
    queue_kind = scnn::serve::queue_kind_from_string(args.get("queue", "lockfree"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soak_serve: %s\n", e.what());
    return usage(argv[0]);
  }
  if (duration_s < 1 || workers < 1 || closed_clients < 1 || open_rps < 0 ||
      capacity < 2 || max_batch < 1) {
    std::fprintf(stderr, "soak_serve: out-of-range flag value\n");
    return usage(argv[0]);
  }

  // --- fixed workload + bit-exact reference -------------------------------
  const scnn::data::Dataset data =
      scnn::data::make_synthetic_digits({.count = 64, .seed = 7});
  const int n_samples = data.images.n();
  const Tensor calib = scnn::nn::batch_slice(data.images, 0, 16);
  const int img_h = data.images.h();
  const auto factory = [img_h] {
    scnn::nn::Network net = scnn::nn::make_mnist_net(img_h);
    net.add<ChaosLayer>();
    return net;
  };
  const scnn::nn::EngineConfig engine{
      .kind = scnn::nn::EngineKind::kProposed, .n_bits = 8, .threads = 1};

  std::vector<Tensor> samples;
  std::vector<Tensor> reference;
  {
    scnn::nn::InferenceSession session(factory(), /*threads=*/1);
    session.calibrate(calib);
    session.set_engine(engine);
    for (int i = 0; i < n_samples; ++i) {
      samples.push_back(scnn::nn::batch_slice(data.images, i, 1));
      reference.push_back(session.forward(samples.back()));
    }
  }

  // The second tenant ("canary") shares the factory + engine, so its
  // generation-0 reference IS `reference`; generation 1 is a perturbed
  // checkpoint hot-swapped in mid-run, with its own direct-forward reference.
  std::vector<float> canary_v1_params;
  std::vector<Tensor> canary_ref_v1;
  {
    canary_v1_params = factory().save_parameters();
    for (float& v : canary_v1_params) v *= 0.5f;
    scnn::nn::Network net = factory();
    net.load_parameters(canary_v1_params);
    scnn::nn::InferenceSession session(std::move(net), /*threads=*/1);
    session.calibrate(calib);
    session.set_engine(engine);
    for (int i = 0; i < n_samples; ++i)
      canary_ref_v1.push_back(
          session.forward(samples[static_cast<std::size_t>(i)]));
  }

  ServerOptions opts;
  opts.workers = workers;
  opts.session_threads = 1;
  opts.max_batch = max_batch;
  opts.max_delay_us = 200;
  opts.queue_capacity = capacity;
  opts.queue_kind = queue_kind;
  opts.engine = engine;  // tenants without their own engine inherit this
  opts.flight_dump_prefix = out_prefix + "_flight";
  std::vector<scnn::serve::TenantInit> tenants(2);
  tenants[0].options.name = "default";
  tenants[1].options.name = "canary";
  for (scnn::serve::TenantInit& t : tenants) {
    t.factory = factory;
    t.calibration = calib;
  }
  Server server(std::move(tenants), opts);
  scnn::obs::SnapshotLogger snapshots(server.metrics(),
                                      out_prefix + "_snapshots.jsonl",
                                      /*interval_ms=*/250);

  std::printf("soak_serve: %ds, queue %s, %d workers, %d closed clients, "
              "%d rps open loop, capacity %d, max_batch %d\n",
              duration_s, to_string(queue_kind).c_str(), workers,
              closed_clients, open_rps, capacity, max_batch);

  Tally tally;
  ReapQueue reap;
  std::atomic<bool> stop{false};
  std::atomic<int> pause_flaps{0};
  const auto deadline = Clock::now() + std::chrono::seconds(duration_s);

  // --- clients ------------------------------------------------------------
  std::vector<std::thread> threads;

  // Closed loop: submit, wait, verify, repeat. These threads ride through
  // every chaos phase, so they see sheds, rejects, timeouts, and kError.
  for (int c = 0; c < closed_clients; ++c) {
    threads.emplace_back([&, c] {
      std::mt19937_64 rng(0x50a7u + static_cast<std::uint64_t>(c));
      std::uniform_int_distribution<int> pick(0, n_samples - 1);
      for (std::uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const int idx = pick(rng);
        tally.submitted.fetch_add(1, std::memory_order_relaxed);
        const Response r =
            server.submit({.input = samples[static_cast<std::size_t>(idx)],
                           .priority = priority_of(i)})
                .get();
        tally.account(r, reference[static_cast<std::size_t>(idx)]);
      }
    });
  }

  // Open loop: fixed-rate fire-and-forget; the reaper thread verifies.
  if (open_rps > 0) {
    threads.emplace_back([&] {
      const auto period = std::chrono::microseconds(1000000 / open_rps);
      std::mt19937_64 rng(0x0be7u);
      std::uniform_int_distribution<int> pick(0, n_samples - 1);
      auto next = Clock::now();
      for (std::uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const int idx = pick(rng);
        tally.submitted.fetch_add(1, std::memory_order_relaxed);
        reap.push(server.submit({.input = samples[static_cast<std::size_t>(idx)],
                                 .priority = priority_of(i + 1)}),
                  idx);
        next += period;
        std::this_thread::sleep_until(next);
      }
    });
  }

  // Canary outcomes by generation: post-swap kOk responses (epoch 1) are the
  // proof the hot swap actually took effect mid-run.
  std::atomic<std::uint64_t> canary_ok_old{0}, canary_ok_new{0};

  // Reaper: resolves fire-and-forget tickets off the submission path. A
  // canary ticket verifies against the generation it was ADMITTED under —
  // the response's epoch names the reference.
  std::thread reaper([&] {
    ReapQueue::Item item;
    for (;;) {
      if (!reap.pop(item)) {
        if (reap.closed.load(std::memory_order_relaxed)) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      const Response r = item.ticket.get();
      const std::vector<Tensor>& want_set =
          item.canary && r.epoch > 0 ? canary_ref_v1 : reference;
      tally.account(r, want_set[static_cast<std::size_t>(item.idx)]);
      if (item.canary && r.status == Status::kOk)
        (r.epoch > 0 ? canary_ok_new : canary_ok_old)
            .fetch_add(1, std::memory_order_relaxed);
    }
  });

  // --- chaos controller ---------------------------------------------------
  // Rotates ~500ms phases. Poison sits early in the cycle so even short
  // runs exercise the worker-exception path at least once; the mixed-tenant
  // phase interleaves canary traffic with the steady default load and
  // performs the run's ONE mid-flight hot swap halfway through its first
  // burst (requests admitted before the swap must resolve on generation 0,
  // after it on generation 1 — the reaper verifies against the epoch each
  // response reports).
  enum class Phase {
    kSteady, kPoison, kMixedTenant, kDeadlineStorm, kRejectBurst, kPauseResume
  };
  const Phase cycle[] = {Phase::kSteady,      Phase::kPoison,
                         Phase::kMixedTenant, Phase::kDeadlineStorm,
                         Phase::kRejectBurst, Phase::kPauseResume};
  std::size_t slot = 0;
  bool swapped = false;
  while (Clock::now() < deadline) {
    switch (cycle[slot++ % std::size(cycle)]) {
      case Phase::kSteady:
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        break;
      case Phase::kPoison:
        g_poison_armed.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        break;
      case Phase::kMixedTenant:
        // Paced canary burst riding on the steady default traffic; both
        // tenants' batches multiplex over the same workers and rings.
        for (int i = 0; i < capacity && Clock::now() < deadline; ++i) {
          if (i == capacity / 2 && !swapped) {
            swapped = true;  // the one mid-flight swap, canary traffic live
            server.swap("canary", canary_v1_params);
          }
          const int idx = i % n_samples;
          tally.submitted.fetch_add(1, std::memory_order_relaxed);
          reap.push(
              server.submit({.tenant = "canary",
                             .input = samples[static_cast<std::size_t>(idx)],
                             .priority = priority_of(static_cast<std::uint64_t>(i))}),
              idx, /*canary=*/true);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        break;
      case Phase::kDeadlineStorm:
        // Deadlines far shorter than a batch window: most resolve kTimedOut.
        for (int i = 0; i < 2 * capacity && Clock::now() < deadline; ++i) {
          tally.submitted.fetch_add(1, std::memory_order_relaxed);
          reap.push(
              server.submit(
                  {.input = samples[static_cast<std::size_t>(i % n_samples)],
                   .priority = priority_of(static_cast<std::uint64_t>(i)),
                   .deadline_us = 50}),
              i % n_samples);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        break;
      case Phase::kRejectBurst:
        // Flood far past capacity without pacing: forces sheds + kQueueFull.
        for (int i = 0; i < 4 * capacity; ++i) {
          tally.submitted.fetch_add(1, std::memory_order_relaxed);
          reap.push(
              server.submit(
                  {.input = samples[static_cast<std::size_t>(i % n_samples)],
                   .priority = priority_of(static_cast<std::uint64_t>(i))}),
              i % n_samples);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        break;
      case Phase::kPauseResume:
        server.pause();
        pause_flaps.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        server.resume();
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        break;
    }
  }

  // --- quiesce ------------------------------------------------------------
  stop.store(true);
  for (std::thread& t : threads) t.join();
  reap.closed.store(true);
  reaper.join();                   // every outstanding ticket verified
  g_poison_armed.store(0);         // disarm anything a batch never consumed

  // Clean probes: the server must still serve bit-exactly after the storm —
  // injected exceptions resolved kError without taking a worker down. The
  // canary probes additionally pin the post-swap contract: every one must
  // resolve on generation 1, bit-identical to the NEW checkpoint's direct
  // forward. (A too-short run may end before the mixed-tenant phase; swap
  // now so the post-swap probes always have something to verify.)
  if (!swapped) {
    swapped = true;
    server.swap("canary", canary_v1_params);
  }
  int probes_ok = 0;
  constexpr int kDefaultProbes = 20;
  constexpr int kCanaryProbes = 10;
  constexpr int kProbes = kDefaultProbes + kCanaryProbes;
  for (int i = 0; i < kDefaultProbes; ++i) {
    const int idx = i % n_samples;
    const Response r =
        server.submit({.input = samples[static_cast<std::size_t>(idx)],
                       .priority = Priority::kHigh})
            .get();
    if (r.status == Status::kOk &&
        bit_identical(r.logits, reference[static_cast<std::size_t>(idx)]))
      ++probes_ok;
    else
      std::fprintf(stderr, "soak_serve: probe %d failed: status %s %s\n", i,
                   to_string(r.status).c_str(), r.error.c_str());
  }
  for (int i = 0; i < kCanaryProbes; ++i) {
    const int idx = i % n_samples;
    const Response r =
        server.submit({.tenant = "canary",
                       .input = samples[static_cast<std::size_t>(idx)],
                       .priority = Priority::kHigh})
            .get();
    if (r.status == Status::kOk && r.epoch == 1 &&
        bit_identical(r.logits, canary_ref_v1[static_cast<std::size_t>(idx)])) {
      ++probes_ok;
      canary_ok_new.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::fprintf(stderr,
                   "soak_serve: canary probe %d failed: status %s epoch %llu %s\n",
                   i, to_string(r.status).c_str(),
                   static_cast<unsigned long long>(r.epoch), r.error.c_str());
    }
  }

  // Flight dump must exist and round-trip through the repo's JSON parser.
  const std::string dump_path = out_prefix + "_flight_final.json";
  bool dump_ok = false;
  std::size_t dump_events = 0;
  if (server.dump_flight(dump_path, "soak end-of-run") == dump_path) {
    std::ifstream in(dump_path);
    std::stringstream body;
    body << in.rdbuf();
    const std::optional<scnn::obs::json::Value> doc =
        scnn::obs::json::parse(body.str());
    if (doc && doc->is_object()) {
      const scnn::obs::json::Value* events = doc->find("events");
      if (events && events->is_array() && !events->array.empty()) {
        dump_ok = true;
        dump_events = events->array.size();
      }
    }
  }
  if (!dump_ok)
    std::fprintf(stderr, "soak_serve: flight dump %s missing or unparseable\n",
                 dump_path.c_str());

  snapshots.stop();
  bool drained_clean = true;
  try {
    server.drain();
  } catch (const std::exception& e) {
    drained_clean = false;
    std::fprintf(stderr, "soak_serve: drain rethrew: %s\n", e.what());
  }

  // --- verdict + report ---------------------------------------------------
  const int fired = g_poison_fired.load();
  const std::uint64_t mismatched = tally.mismatched.load();
  const std::uint64_t foreign = tally.foreign_errors.load();
  const std::uint64_t chaos_errors = tally.chaos_errors.load();
  const bool poison_resolved = fired == 0 || chaos_errors > 0;
  // The swap happened (mid-burst or at quiesce) and at least one post-swap
  // canary response verified kOk against the NEW checkpoint.
  const bool swap_verified = swapped && canary_ok_new.load() > 0;

  std::printf("  %-18s %llu\n", "submitted", static_cast<unsigned long long>(tally.submitted.load()));
  std::printf("  %-18s %llu\n", "ok (bit-exact)", static_cast<unsigned long long>(tally.ok.load()));
  std::printf("  %-18s %llu\n", "mismatched", static_cast<unsigned long long>(mismatched));
  std::printf("  %-18s %llu\n", "shed", static_cast<unsigned long long>(tally.shed.load()));
  std::printf("  %-18s %llu\n", "rejected", static_cast<unsigned long long>(tally.rejected.load()));
  std::printf("  %-18s %llu\n", "timed_out", static_cast<unsigned long long>(tally.timed_out.load()));
  std::printf("  %-18s %llu (%d injected)\n", "chaos errors",
              static_cast<unsigned long long>(chaos_errors), fired);
  std::printf("  %-18s %llu\n", "foreign errors", static_cast<unsigned long long>(foreign));
  std::printf("  %-18s %d\n", "pause flaps", pause_flaps.load());
  std::printf("  %-18s %llu old gen, %llu new gen (swap %s)\n", "canary ok",
              static_cast<unsigned long long>(canary_ok_old.load()),
              static_cast<unsigned long long>(canary_ok_new.load()),
              swap_verified ? "verified" : "NOT VERIFIED");
  std::printf("  %-18s %d/%d\n", "clean probes", probes_ok, kProbes);
  std::printf("  %-18s %s (%zu events)\n", "flight dump",
              dump_ok ? dump_path.c_str() : "FAILED", dump_events);

  scnn::obs::JsonReport report = scnn::obs::stamped_report("soak");
  report.set_meta("queue", to_string(queue_kind));
  report.set_meta("duration_s", static_cast<double>(duration_s));
  report.set_meta("workers", static_cast<double>(workers));
  report.set_meta("closed_clients", static_cast<double>(closed_clients));
  report.set_meta("open_rps", static_cast<double>(open_rps));
  report.set_meta("queue_capacity", static_cast<double>(capacity));
  report.add_metric("soak.submitted", static_cast<double>(tally.submitted.load()), "requests");
  report.add_metric("soak.ok", static_cast<double>(tally.ok.load()), "requests");
  report.add_metric("soak.mismatched", static_cast<double>(mismatched), "requests");
  report.add_metric("soak.shed", static_cast<double>(tally.shed.load()), "requests");
  report.add_metric("soak.rejected", static_cast<double>(tally.rejected.load()), "requests");
  report.add_metric("soak.timed_out", static_cast<double>(tally.timed_out.load()), "requests");
  report.add_metric("soak.chaos_errors", static_cast<double>(chaos_errors), "requests");
  report.add_metric("soak.poison_fired", static_cast<double>(fired), "faults");
  report.add_metric("soak.pause_flaps", static_cast<double>(pause_flaps.load()), "count");
  report.add_metric("soak.probes_ok", static_cast<double>(probes_ok), "probes");
  report.add_metric("soak.canary_ok_old", static_cast<double>(canary_ok_old.load()), "requests");
  report.add_metric("soak.canary_ok_new", static_cast<double>(canary_ok_new.load()), "requests");
  report.add_metric("soak.swaps", swapped ? 1.0 : 0.0, "swaps");
  scnn::obs::append_registry(server.metrics(), report);
  (void)report.write_file();  // prints the written path itself

  const bool pass = mismatched == 0 && foreign == 0 && poison_resolved &&
                    probes_ok == kProbes && dump_ok && drained_clean &&
                    swap_verified;
  std::printf("soak_serve: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
