// scnn_cli — command-line front end for the library.
//
//   scnn_cli gen    <digits|objects> <count> <out-dir>     dataset + contact sheet
//   scnn_cli train  <digits|objects> <epochs> <ckpt>       float training -> checkpoint
//   scnn_cli eval   <digits|objects> <ckpt> <N> [kind]     quantized/SC inference
//   scnn_cli sweep  <digits|objects> <ckpt> <Nmin> <Nmax>  precision sweep, all engines
//   scnn_cli info                                          build/config summary
//
// Datasets are synthetic unless real MNIST/CIFAR-10 files are present under
// $SCNN_DATA_DIR (see README).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "data/image_io.hpp"
#include "data/idx_loader.hpp"
#include "data/synthetic_digits.hpp"
#include "data/synthetic_objects.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace {

using scnn::data::Dataset;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  scnn_cli gen    <digits|objects> <count> <out-dir>\n"
               "  scnn_cli train  <digits|objects> <epochs> <ckpt>\n"
               "  scnn_cli eval   <digits|objects> <ckpt> <N> [fixed|sc-lfsr|proposed]\n"
               "  scnn_cli sweep  <digits|objects> <ckpt> <Nmin> <Nmax>\n"
               "  scnn_cli info\n");
  return 2;
}

bool is_digits(const std::string& task) { return task == "digits"; }

Dataset make_data(const std::string& task, int count, std::uint64_t seed) {
  const char* env = std::getenv("SCNN_DATA_DIR");
  const std::string dir = env ? env : "data";
  if (is_digits(task)) {
    if (auto real = scnn::data::try_load_mnist(dir, seed == 1))
      return scnn::data::take(scnn::data::shuffled(*real, seed), count);
    return scnn::data::make_synthetic_digits({.count = count, .seed = seed});
  }
  if (auto real = scnn::data::try_load_cifar10(dir, seed == 1))
    return scnn::data::take(scnn::data::shuffled(*real, seed), count);
  return scnn::data::make_synthetic_objects({.count = count, .seed = seed});
}

scnn::nn::Network make_net(const std::string& task) {
  return is_digits(task) ? scnn::nn::make_mnist_net() : scnn::nn::make_cifar_net();
}

int cmd_gen(const std::string& task, int count, const std::string& out_dir) {
  namespace fs = std::filesystem;
  fs::create_directories(out_dir);
  const Dataset d = make_data(task, count, 1);
  for (int i = 0; i < std::min(count, 16); ++i) {
    const std::string name = out_dir + "/" + task + "_" + std::to_string(i) + "_label" +
                             std::to_string(d.labels[static_cast<std::size_t>(i)]) +
                             (d.images.c() == 1 ? ".pgm" : ".ppm");
    scnn::data::write_image(d.images, i, name);
  }
  const int grid = 4;
  if (count >= grid * grid) {
    scnn::data::write_contact_sheet(
        d.images, grid, grid,
        out_dir + "/" + task + "_sheet" + (d.images.c() == 1 ? ".pgm" : ".ppm"));
  }
  std::printf("wrote %d samples + contact sheet to %s\n", std::min(count, 16),
              out_dir.c_str());
  return 0;
}

int cmd_train(const std::string& task, int epochs, const std::string& ckpt) {
  const Dataset train = make_data(task, is_digits(task) ? 1200 : 800, 1);
  const Dataset test = make_data(task, 300, 2);
  scnn::nn::Network net = make_net(task);
  scnn::nn::SgdTrainer trainer({.epochs = epochs, .batch_size = 25,
                                .learning_rate = 0.01f, .lr_decay = 0.9f,
                                .verbose = true});
  trainer.train(net, train.images, train.labels);
  std::printf("float test accuracy: %.3f\n", net.accuracy(test.images, test.labels));
  scnn::nn::save_checkpoint(net, ckpt);
  std::printf("checkpoint saved to %s\n", ckpt.c_str());
  return 0;
}

int load_for_eval(const std::string& task, const std::string& ckpt,
                  scnn::nn::Network& net, Dataset& test) {
  if (!scnn::nn::checkpoint_exists(ckpt)) {
    std::fprintf(stderr, "no checkpoint at %s (run `scnn_cli train` first)\n",
                 ckpt.c_str());
    return 1;
  }
  net = make_net(task);
  scnn::nn::load_checkpoint(net, ckpt);
  test = make_data(task, 300, 2);
  const Dataset calib = make_data(task, 64, 3);
  scnn::nn::calibrate_network(net, calib.images);
  return 0;
}

int cmd_eval(const std::string& task, const std::string& ckpt, int n_bits,
             const std::string& kind) {
  scnn::nn::Network net;
  Dataset test;
  if (const int rc = load_for_eval(task, ckpt, net, test)) return rc;
  scnn::nn::EnginePool pool;
  scnn::nn::set_conv_engine(net, pool.get({.kind = kind, .n_bits = n_bits, .a_bits = 2}));
  std::printf("%s N=%d accuracy: %.3f\n", kind.c_str(), n_bits,
              net.accuracy(test.images, test.labels));
  return 0;
}

int cmd_sweep(const std::string& task, const std::string& ckpt, int n_min, int n_max) {
  scnn::nn::Network net;
  Dataset test;
  if (const int rc = load_for_eval(task, ckpt, net, test)) return rc;
  scnn::nn::EnginePool pool;
  std::printf("%-4s %-10s %-10s %-10s\n", "N", "fixed", "sc-lfsr", "proposed");
  for (int n = n_min; n <= n_max; ++n) {
    std::printf("%-4d", n);
    for (const char* kind : {"fixed", "sc-lfsr", "proposed"}) {
      scnn::nn::set_conv_engine(net, pool.get({.kind = kind, .n_bits = n, .a_bits = 2}));
      std::printf(" %-10.3f", net.accuracy(test.images, test.labels));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_info() {
  std::printf("scnn — BISC-MVM stochastic-computing CNN library (DAC'17 reproduction)\n");
  std::printf("engines: fixed, sc-lfsr, proposed; precisions N = 2..12, A >= 0\n");
  const char* env = std::getenv("SCNN_DATA_DIR");
  std::printf("data dir: %s (real MNIST/CIFAR-10 picked up when present)\n",
              env ? env : "data");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "info") return cmd_info();
    if (cmd == "gen" && args.size() == 4)
      return cmd_gen(args[1], std::stoi(args[2]), args[3]);
    if (cmd == "train" && args.size() == 4)
      return cmd_train(args[1], std::stoi(args[2]), args[3]);
    if (cmd == "eval" && (args.size() == 4 || args.size() == 5))
      return cmd_eval(args[1], args[2], std::stoi(args[3]),
                      args.size() == 5 ? args[4] : "proposed");
    if (cmd == "sweep" && args.size() == 5)
      return cmd_sweep(args[1], args[2], std::stoi(args[3]), std::stoi(args[4]));
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
