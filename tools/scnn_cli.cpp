// scnn_cli — command-line front end for the library.
//
//   scnn_cli gen    <digits|objects> [--count=N] [--out=DIR]
//   scnn_cli train  <digits|objects> [--epochs=E] [--ckpt=FILE] [--threads=T]
//   scnn_cli eval   [digits|objects] [--ckpt=FILE] [--bits=N] [--accum=A]
//                   [--engine=fixed|sc-lfsr|proposed] [--threads=T] [--count=N]
//   scnn_cli sweep  [digits|objects] [--ckpt=FILE] [--nmin=N] [--nmax=N] [--threads=T]
//   scnn_cli stats  [digits|objects] [--ckpt=FILE] [--bits=N] [--accum=A]
//                   [--engine=...] [--threads=T] [--count=N] [--bit-parallel=B]
//                   [--trace-out=FILE]
//   scnn_cli serve  [digits|objects] [--ckpt=FILE] [--bits=N] [--accum=A]
//                   [--engine=...] [--tenants=FILE] [--requests=N]
//                   [--concurrency=C] [--max-batch=B] [--max-delay-us=U]
//                   [--queue-cap=Q] [--queue=lockfree|mutex]
//                   [--priority=high|normal|batch|mixed] [--workers=W]
//                   [--session-threads=T] [--deadline-us=D] [--count=N]
//                   [--trace-out=FILE] [--dump-flight=FILE]
//                   [--metrics-interval-ms=M]
//   scnn_cli info
//
// `serve` stands up the batched serving runtime (serve::Server) over the
// checkpoint and drives it with a closed-loop load of C client threads.
// --tenants=FILE loads a multi-model deployment instead: the file is one
// ServerOptions JSON document (server knobs + default engine + a `tenants`
// array of {name, checkpoint, shards, engine}), requests rotate round-robin
// over the tenant table, and the metrics registry gains serve.<tenant>.*
// rows. The runtime
// prints a latency/throughput table (client-side and server-side quantiles)
// plus the serving metrics, and exits non-zero if any admitted request is
// lost (see docs/SERVING.md). --trace-out exports the per-request span tree,
// --dump-flight the forensic event ring, and --metrics-interval-ms appends a
// JSON-lines metrics time series (see docs/OBSERVABILITY.md).
//
// `stats` runs one instrumented forward pass and emits the per-layer table,
// a BENCH-shaped JSON metrics snapshot (--metrics-out, default
// scnn_metrics.json), and a chrome://tracing timeline (--trace-out, default
// scnn_trace.json). Every command accepts --metrics-out=FILE.
//
// Legacy positional forms (eval <task> <ckpt> <N> [kind], ...) still parse;
// flags win over positionals. `eval` trains a quick model on the fly when
// the checkpoint is missing, so it works end to end out of the box.
//
// Datasets are synthetic unless real MNIST/CIFAR-10 files are present under
// $SCNN_DATA_DIR (see README).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/table.hpp"
#include "data/image_io.hpp"
#include "nn/autotune.hpp"
#include "nn/mac_backends/mac_backends.hpp"
#include "nn/popcount_engine.hpp"
#include "data/idx_loader.hpp"
#include "data/synthetic_digits.hpp"
#include "data/synthetic_objects.hpp"
#include "nn/inference_session.hpp"
#include "nn/network.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/snapshot_log.hpp"
#include "serve/server.hpp"
#include "tools/cli_args.hpp"

#include <memory>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

namespace {

using scnn::cli::Args;
using scnn::data::Dataset;
using scnn::nn::EngineConfig;
using scnn::nn::EngineKind;
using scnn::nn::InferenceSession;

constexpr const char* kDefaultCkpt = "scnn_ckpt.bin";

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  scnn_cli gen    <digits|objects> [--count=N] [--out=DIR]\n"
      "  scnn_cli train  <digits|objects> [--epochs=E] [--ckpt=FILE] [--threads=T]\n"
      "  scnn_cli eval   [digits|objects] [--ckpt=FILE] [--bits=N] [--accum=A]\n"
      "                  [--engine=fixed|sc-lfsr|proposed] [--backend=auto|scalar|simd]\n"
      "                  [--sparsity=auto|dense|zero-skip] [--threads=T] [--count=N]\n"
      "  scnn_cli sweep  [digits|objects] [--ckpt=FILE] [--nmin=N] [--nmax=N]\n"
      "                  [--backend=auto|scalar|simd] [--sparsity=...] [--threads=T]\n"
      "  scnn_cli stats  [digits|objects] [--ckpt=FILE] [--bits=N] [--accum=A]\n"
      "                  [--engine=fixed|sc-lfsr|proposed] [--backend=auto|scalar|simd]\n"
      "                  [--sparsity=auto|dense|zero-skip] [--threads=T] [--count=N]\n"
      "                  [--bit-parallel=B] [--trace-out=FILE]\n"
      "  scnn_cli serve  [digits|objects] [--ckpt=FILE] [--bits=N] [--accum=A]\n"
      "                  [--engine=fixed|sc-lfsr|proposed] [--backend=auto|scalar|simd]\n"
      "                  [--sparsity=auto|dense|zero-skip] [--engine-config=JSON]\n"
      "                  [--requests=N] [--concurrency=C] [--max-batch=B]\n"
      "                  [--max-delay-us=U] [--queue-cap=Q] [--workers=W]\n"
      "                  [--session-threads=T] [--deadline-us=D] [--count=N]\n"
      "                  [--trace-out=FILE] [--dump-flight=FILE]\n"
      "                  [--metrics-interval-ms=M]\n"
      "  scnn_cli tune   [digits|objects] [--ckpt=FILE] [--bits=N] [--accum=A]\n"
      "                  [--out=FILE] [--count=N] [--reps=R] [--quick]\n"
      "  scnn_cli info\n"
      "flags take the form --key=value; --threads=0 uses every hardware thread\n"
      "every command accepts --metrics-out=FILE to dump a JSON metrics snapshot\n"
      "--backend selects the mac_rows kernel and --sparsity the weight-code\n"
      "schedule (zero-skip skips k=0 products; bit-identical results either way);\n"
      "serve's --engine-config takes EngineConfig::to_json() output and excludes\n"
      "the individual --engine/--bits/--accum/--backend/--sparsity flags\n"
      "`tune` measures the (kernel x im2col-tile x threads) grid on this machine\n"
      "and writes tune.json; install it with --tune-file=FILE (eval/sweep/stats/\n"
      "serve) or the SCNN_TUNE_FILE env to steer --backend=auto dispatch — pure\n"
      "scheduling, logits stay bit-identical (a wrong-CPU file is rejected)\n"
      "serve observability: --trace-out exports the per-request span tree\n"
      "(chrome://tracing JSON), --dump-flight writes the forensic event ring,\n"
      "and --metrics-interval-ms appends a JSON-lines metrics time series to\n"
      "<metrics-out>.jsonl (scnn_serve_metrics.jsonl without --metrics-out)\n");
  return 2;
}

/// Honor --metrics-out on any command: write a stamped BENCH-shaped JSON
/// snapshot (provenance + engine meta + the session's merged registry, when
/// a session exists). No-op when the flag is absent.
void write_metrics_out(const Args& args, const std::string& command,
                       InferenceSession* session) {
  const std::string path = args.get("metrics-out", "");
  if (path.empty()) return;
  scnn::obs::JsonReport report = scnn::obs::stamped_report("scnn_cli_" + command);
  report.set_meta("command", command);
  if (session) {
    if (session->config()) {
      // The engine overload stamps the backend the live engine actually
      // dispatches to, not just what the config requested.
      if (session->engine())
        scnn::nn::stamp_engine_meta(report, *session->config(), *session->engine());
      else
        scnn::nn::stamp_engine_meta(report, *session->config());
    }
    scnn::obs::append_registry(session->metrics(), report);
  }
  report.write_file(path);
}

/// Honor --tune-file on eval/sweep/stats/serve: load and install the
/// autotune file so every --backend=auto resolution (kernel and im2col
/// tile) consumes it. Throws (load or CPU-signature mismatch) rather than
/// silently running untuned — a requested tune file must actually apply.
void install_tune_file(const Args& args) {
  const std::string path = args.get("tune-file", "");
  if (path.empty()) return;
  scnn::nn::set_active_tune(scnn::nn::load_tune_file(path));
  const scnn::nn::TuneFile* tune = scnn::nn::active_tune();
  std::printf("tune: %s (backend=%s tile=%d threads=%d)\n", path.c_str(),
              tune->best_backend.empty() ? "auto" : tune->best_backend.c_str(),
              tune->best_tile, tune->best_threads);
}

bool is_digits(const std::string& task) { return task == "digits"; }

std::string parse_task(const Args& args, std::size_t positional_index,
                       const std::string& fallback = "digits") {
  const std::string task =
      args.get("task", args.positional(positional_index, fallback));
  if (task != "digits" && task != "objects")
    throw scnn::cli::ArgError("unknown task '" + task +
                              "' (expected digits or objects)");
  return task;
}

Dataset make_data(const std::string& task, int count, std::uint64_t seed) {
  const char* env = std::getenv("SCNN_DATA_DIR");
  const std::string dir = env ? env : "data";
  if (is_digits(task)) {
    if (auto real = scnn::data::try_load_mnist(dir, seed == 1))
      return scnn::data::take(scnn::data::shuffled(*real, seed), count);
    return scnn::data::make_synthetic_digits({.count = count, .seed = seed});
  }
  if (auto real = scnn::data::try_load_cifar10(dir, seed == 1))
    return scnn::data::take(scnn::data::shuffled(*real, seed), count);
  return scnn::data::make_synthetic_objects({.count = count, .seed = seed});
}

scnn::nn::Network make_net(const std::string& task) {
  return is_digits(task) ? scnn::nn::make_mnist_net() : scnn::nn::make_cifar_net();
}

void train_into(scnn::nn::Network& net, const std::string& task, int epochs,
                const std::string& ckpt) {
  const Dataset train = make_data(task, is_digits(task) ? 1200 : 800, 1);
  const Dataset test = make_data(task, 300, 2);
  scnn::nn::SgdTrainer trainer({.epochs = epochs, .batch_size = 25,
                                .learning_rate = 0.01f, .lr_decay = 0.9f,
                                .verbose = true});
  trainer.train(net, train.images, train.labels);
  std::printf("float test accuracy: %.3f\n", net.accuracy(test.images, test.labels));
  scnn::nn::save_checkpoint(net, ckpt);
  std::printf("checkpoint saved to %s\n", ckpt.c_str());
}

int cmd_gen(const Args& args) {
  args.require_known({"task", "count", "out", "metrics-out"});
  const std::string task = parse_task(args, 0);
  const int count = args.get_int("count", std::stoi(args.positional(1, "16")));
  const std::string out_dir = args.get("out", args.positional(2, "out"));
  namespace fs = std::filesystem;
  fs::create_directories(out_dir);
  const Dataset d = make_data(task, count, 1);
  for (int i = 0; i < std::min(count, 16); ++i) {
    const std::string name = out_dir + "/" + task + "_" + std::to_string(i) + "_label" +
                             std::to_string(d.labels[static_cast<std::size_t>(i)]) +
                             (d.images.c() == 1 ? ".pgm" : ".ppm");
    scnn::data::write_image(d.images, i, name);
  }
  const int grid = 4;
  if (count >= grid * grid) {
    scnn::data::write_contact_sheet(
        d.images, grid, grid,
        out_dir + "/" + task + "_sheet" + (d.images.c() == 1 ? ".pgm" : ".ppm"));
  }
  std::printf("wrote %d samples + contact sheet to %s\n", std::min(count, 16),
              out_dir.c_str());
  write_metrics_out(args, "gen", nullptr);
  return 0;
}

int cmd_train(const Args& args) {
  args.require_known({"task", "epochs", "ckpt", "threads", "metrics-out"});
  const std::string task = parse_task(args, 0);
  const int epochs = args.get_int("epochs", std::stoi(args.positional(1, "6")));
  const std::string ckpt = args.get("ckpt", args.positional(2, kDefaultCkpt));
  scnn::nn::Network net = make_net(task);
  train_into(net, task, epochs, ckpt);
  write_metrics_out(args, "train", nullptr);
  return 0;
}

/// Load (or quick-train) a model and wrap it in a calibrated session.
InferenceSession load_session(const std::string& task, const std::string& ckpt,
                              int threads, Dataset& test, int test_count) {
  scnn::nn::Network net = make_net(task);
  if (scnn::nn::checkpoint_exists(ckpt)) {
    scnn::nn::load_checkpoint(net, ckpt);
  } else {
    std::printf("no checkpoint at %s — training a quick model first\n", ckpt.c_str());
    train_into(net, task, 4, ckpt);
  }
  test = make_data(task, test_count, 2);
  InferenceSession session(std::move(net), threads);
  const Dataset calib = make_data(task, 64, 3);
  session.calibrate(calib.images);
  return session;
}

int cmd_eval(const Args& args) {
  args.require_known({"task", "ckpt", "bits", "accum", "engine", "backend", "sparsity",
                      "threads", "count", "metrics-out", "tune-file"});
  install_tune_file(args);
  const std::string task = parse_task(args, 0);
  const std::string ckpt = args.get("ckpt", args.positional(1, kDefaultCkpt));
  const EngineConfig cfg{
      .kind = scnn::nn::engine_kind_from_string(
          args.get("engine", args.positional(3, "proposed"))),
      .n_bits = args.get_int("bits", std::stoi(args.positional(2, "8"))),
      .accum_bits = args.get_int("accum", 2),
      .threads = args.get_int("threads", 1),
      // Only collect metrics when someone asked for the snapshot.
      .instrument = !args.get("metrics-out", "").empty(),
      .backend = scnn::nn::mac_backend_from_string(args.get("backend", "auto")),
      .sparsity = scnn::nn::sparsity_from_string(args.get("sparsity", "auto"))};
  cfg.validate();

  Dataset test;
  InferenceSession session =
      load_session(task, ckpt, cfg.threads, test, args.get_int("count", 300));
  session.set_engine(cfg);
  const double acc = session.accuracy(test.images, test.labels);
  const auto stats = session.last_forward_stats();
  std::printf("%s N=%d A=%d threads=%d backend=%s sparsity=%s accuracy: %.3f\n",
              to_string(cfg.kind).c_str(), cfg.n_bits, cfg.accum_bits,
              session.threads(), session.backend().backend.c_str(),
              session.backend().sparsity.c_str(), acc);
  std::printf("last batch: %llu MACs, %llu products, %llu saturations\n",
              static_cast<unsigned long long>(stats.macs),
              static_cast<unsigned long long>(stats.products),
              static_cast<unsigned long long>(stats.saturations));
  write_metrics_out(args, "eval", &session);
  return 0;
}

int cmd_sweep(const Args& args) {
  args.require_known({"task", "ckpt", "nmin", "nmax", "backend", "sparsity",
                      "threads", "metrics-out", "tune-file"});
  install_tune_file(args);
  const std::string task = parse_task(args, 0);
  const std::string ckpt = args.get("ckpt", args.positional(1, kDefaultCkpt));
  const int n_min = args.get_int("nmin", std::stoi(args.positional(2, "5")));
  const int n_max = args.get_int("nmax", std::stoi(args.positional(3, "9")));
  if (n_min > n_max) throw scnn::cli::ArgError("--nmin must be <= --nmax");
  const int threads = args.get_int("threads", 1);
  const scnn::nn::MacBackend backend =
      scnn::nn::mac_backend_from_string(args.get("backend", "auto"));
  const scnn::nn::Sparsity sparsity =
      scnn::nn::sparsity_from_string(args.get("sparsity", "auto"));
  const bool instrument = !args.get("metrics-out", "").empty();

  Dataset test;
  InferenceSession session = load_session(task, ckpt, threads, test, 300);
  std::printf("%-4s %-10s %-10s %-10s\n", "N", "fixed", "sc-lfsr", "proposed");
  for (int n = n_min; n <= n_max; ++n) {
    std::printf("%-4d", n);
    for (const EngineKind kind :
         {EngineKind::kFixed, EngineKind::kScLfsr, EngineKind::kProposed}) {
      session.set_engine({.kind = kind, .n_bits = n, .threads = threads,
                          .instrument = instrument, .backend = backend,
                          .sparsity = sparsity});
      std::printf(" %-10.3f", session.accuracy(test.images, test.labels));
    }
    std::printf("\n");
  }
  write_metrics_out(args, "sweep", &session);
  return 0;
}

/// One instrumented forward pass; prints the per-layer table and writes the
/// metrics snapshot + chrome://tracing timeline. Exits nonzero if the summed
/// per-layer SC cycles do not equal the engine's MacStats totals exactly.
int cmd_stats(const Args& args) {
  args.require_known({"task", "ckpt", "bits", "accum", "engine", "backend", "sparsity",
                      "threads", "count", "bit-parallel", "metrics-out", "trace-out",
                      "tune-file"});
  install_tune_file(args);
  const std::string task = parse_task(args, 0);
  const std::string ckpt = args.get("ckpt", args.positional(1, kDefaultCkpt));
  const EngineConfig cfg{
      .kind = scnn::nn::engine_kind_from_string(
          args.get("engine", args.positional(3, "proposed"))),
      .n_bits = args.get_int("bits", std::stoi(args.positional(2, "8"))),
      .accum_bits = args.get_int("accum", 2),
      .bit_parallel = args.get_int("bit-parallel", 8),
      .threads = args.get_int("threads", 1),
      .instrument = true,
      .backend = scnn::nn::mac_backend_from_string(args.get("backend", "auto")),
      .sparsity = scnn::nn::sparsity_from_string(args.get("sparsity", "auto"))};
  cfg.validate();

  Dataset test;
  InferenceSession session =
      load_session(task, ckpt, cfg.threads, test, args.get_int("count", 32));
  session.set_engine(cfg);  // applies cfg.instrument
  session.metrics().reset();
  session.tracer().reset();

  // One traced pass over the whole probe batch.
  const std::vector<int> preds = session.predict(test.images);
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == test.labels[i]) ++correct;

  const auto find_arg = [](const scnn::obs::TraceSpan& s,
                           std::string_view key) -> const scnn::obs::TraceArg* {
    for (const auto& a : s.args)
      if (a.key == key) return &a;
    return nullptr;
  };

  std::printf("%s N=%d A=%d b=%d threads=%d: %d images, accuracy %.3f\n",
              to_string(cfg.kind).c_str(), cfg.n_bits, cfg.accum_bits,
              cfg.bit_parallel, session.threads(), test.images.n(),
              static_cast<double>(correct) / static_cast<double>(preds.size()));

  using scnn::common::Table;
  Table t({"layer", "ms", "products", "MACs", "saturations", "SC cycles", "avg k",
           "est cyc@b=" + std::to_string(cfg.bit_parallel), "skipped", "sched cyc",
           "saved %"});
  std::uint64_t span_cycle_sum = 0;
  double pass_ms = 0.0;
  for (const scnn::obs::TraceSpan& s : session.tracer().spans()) {
    if (s.name == "forward") {
      pass_ms = s.dur_us / 1000.0;
      continue;
    }
    const auto* products = find_arg(s, "products");
    const auto* macs = find_arg(s, "macs");
    const auto* sats = find_arg(s, "saturations");
    const auto* cycles = find_arg(s, "sc_cycles");
    const auto* skipped = find_arg(s, "skipped_products");
    std::vector<std::string> row{s.name, Table::fmt(s.dur_us / 1000.0, 2)};
    row.push_back(products ? std::to_string(static_cast<std::uint64_t>(products->value))
                           : "-");
    row.push_back(macs ? std::to_string(static_cast<std::uint64_t>(macs->value)) : "-");
    row.push_back(sats ? std::to_string(static_cast<std::uint64_t>(sats->value)) : "-");
    if (cycles && macs) {
      const auto c = static_cast<std::uint64_t>(cycles->value);
      span_cycle_sum += c;
      row.push_back(std::to_string(c));
      row.push_back(products && products->value > 0
                        ? Table::fmt(cycles->value / products->value, 2)
                        : "-");
      row.push_back(std::to_string(
          scnn::nn::estimated_sc_cycles(c, cfg.bit_parallel)));
    } else {
      row.insert(row.end(), {"-", "-", "-"});
    }
    // Zero-skip savings. The dense schedule spends one issue slot per product
    // plus its k enable cycles (the per-row budget convention of the packed
    // cache); zero-skip reclaims exactly the slots of skipped k = 0 products,
    // so the k-cycle sum above is untouched — that is the bit-exactness
    // story — and the saving is pure schedule occupancy.
    if (skipped && products && cycles) {
      const auto sk = static_cast<std::uint64_t>(skipped->value);
      const double dense_sched = products->value + cycles->value;
      row.push_back(std::to_string(sk));
      row.push_back(Table::fmt(dense_sched - static_cast<double>(sk), 0));
      row.push_back(dense_sched > 0
                        ? Table::fmt(100.0 * static_cast<double>(sk) / dense_sched, 1)
                        : "-");
    } else {
      row.insert(row.end(), {"-", "-", "-"});
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf("forward pass: %.2f ms total\n", pass_ms);

  // Exactness gate: the trace must account for every SC cycle the engine
  // counted — the two views come from the same k-histograms, so any drift
  // is a wiring bug.
  const scnn::nn::MacStats stats = session.last_forward_stats();
  if (span_cycle_sum != stats.k_hist.sum) {
    std::fprintf(stderr,
                 "FAIL: per-layer trace cycles (%llu) != engine MacStats cycles (%llu)\n",
                 static_cast<unsigned long long>(span_cycle_sum),
                 static_cast<unsigned long long>(stats.k_hist.sum));
    return 1;
  }
  std::printf("SC cycle accounting: %llu cycles (trace == engine totals), "
              "avg k %.2f, est %llu array cycles at b=%d\n",
              static_cast<unsigned long long>(stats.k_hist.sum), stats.k_hist.mean(),
              static_cast<unsigned long long>(
                  scnn::nn::estimated_sc_cycles(stats.k_hist.sum, cfg.bit_parallel)),
              cfg.bit_parallel);
  {
    const double dense_sched =
        static_cast<double>(stats.products) + static_cast<double>(stats.k_hist.sum);
    std::printf("zero-skip: %s; %llu of %llu products skipped "
                "(schedule %.0f -> %.0f cycles, %.1f%% saved)\n",
                session.engine()->zero_skip() ? "on" : "off",
                static_cast<unsigned long long>(stats.skipped_products),
                static_cast<unsigned long long>(stats.products), dense_sched,
                dense_sched - static_cast<double>(stats.skipped_products),
                dense_sched > 0
                    ? 100.0 * static_cast<double>(stats.skipped_products) / dense_sched
                    : 0.0);
  }

  // Forward-pass wall-time quantiles from the session's log-linear latency
  // histogram (the same numbers append_registry exports as /p50../p999).
  const auto pass_hist =
      session.metrics().latency_histogram("forward.pass_us").snapshot();
  if (pass_hist.count > 0)
    std::printf("forward pass us over %llu passes: p50 %.0f, p90 %.0f, p99 %.0f, "
                "max %llu\n",
                static_cast<unsigned long long>(pass_hist.count),
                pass_hist.quantile(0.50), pass_hist.quantile(0.90),
                pass_hist.quantile(0.99),
                static_cast<unsigned long long>(pass_hist.max));

  // Snapshot + timeline. --metrics-out defaults on for this command.
  scnn::obs::JsonReport report = scnn::obs::stamped_report("scnn_cli_stats");
  report.set_meta("command", "stats");
  report.set_meta("task", task);
  report.set_meta("images", static_cast<double>(test.images.n()));
  scnn::nn::stamp_engine_meta(report, cfg, *session.engine());
  report.add_metric("accuracy",
                    static_cast<double>(correct) / static_cast<double>(preds.size()),
                    "fraction");
  report.add_metric("sc.est_cycles_at_b",
                    static_cast<double>(
                        scnn::nn::estimated_sc_cycles(stats.k_hist.sum, cfg.bit_parallel)),
                    "cycles");
  report.add_metric("sc.skipped_products_last_pass",
                    static_cast<double>(stats.skipped_products), "products");
  scnn::obs::append_registry(session.metrics(), report);
  report.write_file(args.get("metrics-out", "scnn_metrics.json"));

  const std::string trace_path = args.get("trace-out", "scnn_trace.json");
  if (!session.tracer().write_trace_event_json(trace_path)) return 1;
  std::printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n",
              trace_path.c_str());
  return 0;
}

/// Stand up the serving runtime over the checkpoint and drive it with a
/// closed-loop load: C client threads submit single-image requests
/// back-to-back until N total have resolved. Prints the outcome counts,
/// throughput, latency percentiles, and served accuracy; exits non-zero if
/// any admitted request fails to resolve ok/timed-out/rejected (kError means
/// the batch forward threw — a bug, not overload).
int cmd_serve(const Args& args) {
  args.require_known({"task", "ckpt", "bits", "accum", "engine", "backend", "sparsity",
                      "engine-config", "tenants", "requests", "concurrency", "max-batch",
                      "max-delay-us", "queue-cap", "queue", "priority", "workers",
                      "session-threads", "deadline-us", "count", "metrics-out",
                      "tune-file", "trace-out", "dump-flight", "metrics-interval-ms"});
  install_tune_file(args);
  const std::string task = parse_task(args, 0);
  const std::string ckpt = args.get("ckpt", args.positional(1, kDefaultCkpt));
  const std::string cfg_json = args.get("engine-config", "");
  if (!cfg_json.empty() && (args.has("engine") || args.has("bits") ||
                            args.has("accum") || args.has("backend") ||
                            args.has("sparsity")))
    throw scnn::cli::ArgError(
        "--engine-config carries the whole engine configuration; it excludes "
        "--engine/--bits/--accum/--backend/--sparsity");
  // --tenants=FILE: the whole deployment — server knobs, default engine, and
  // the tenant table — comes from one ServerOptions JSON document.
  const std::string tenants_file = args.get("tenants", "");
  if (!tenants_file.empty() &&
      (args.has("engine") || args.has("bits") || args.has("accum") ||
       args.has("backend") || args.has("sparsity") || args.has("engine-config") ||
       args.has("workers") || args.has("session-threads") ||
       args.has("max-batch") || args.has("max-delay-us") ||
       args.has("queue-cap") || args.has("queue") || args.has("deadline-us")))
    throw scnn::cli::ArgError(
        "--tenants carries the whole deployment (a ServerOptions JSON file, "
        "engine and tenant table included); it excludes the per-flag server "
        "and engine options");
  const EngineConfig cfg =
      !cfg_json.empty()
          ? EngineConfig::from_json(cfg_json)
          : EngineConfig{
                .kind = scnn::nn::engine_kind_from_string(args.get("engine", "proposed")),
                .n_bits = args.get_int("bits", 8),
                .accum_bits = args.get_int("accum", 2),
                .backend = scnn::nn::mac_backend_from_string(args.get("backend", "auto")),
                .sparsity = scnn::nn::sparsity_from_string(args.get("sparsity", "auto"))};
  cfg.validate();
  scnn::serve::ServerOptions opts;
  const std::string trace_path = args.get("trace-out", "");
  if (tenants_file.empty()) {
    opts.workers = args.get_int("workers", 1);
    opts.session_threads = args.get_int("session-threads", 0);  // 0 = auto
    opts.max_batch = args.get_int("max-batch", 8);
    opts.max_delay_us = args.get_int("max-delay-us", 200);
    opts.queue_capacity = args.get_int("queue-cap", 64);
    try {
      opts.queue_kind = scnn::serve::queue_kind_from_string(args.get("queue", "lockfree"));
    } catch (const std::invalid_argument& e) {
      throw scnn::cli::ArgError(std::string("--") + e.what());
    }
    opts.default_deadline_us = args.get_int("deadline-us", 0);
    opts.engine = cfg;
  } else {
    std::ifstream in(tenants_file);
    if (!in)
      throw scnn::cli::ArgError("--tenants=" + tenants_file + ": cannot open");
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      opts = scnn::serve::ServerOptions::from_json(buf.str());
    } catch (const std::invalid_argument& e) {
      throw scnn::cli::ArgError("--tenants=" + tenants_file + ": " + e.what());
    }
    if (opts.tenants.empty())
      throw scnn::cli::ArgError("--tenants=" + tenants_file +
                                ": deployment config names no tenants");
  }
  opts.trace = opts.trace || !trace_path.empty();
  opts.validate();
  // --priority: one fixed class for every request, or "mixed" — a
  // deterministic rotation by request index (0 -> high, 1,2 -> normal,
  // 3 -> batch) that exercises shedding under overload.
  const std::string priority_arg = args.get("priority", "normal");
  const bool mixed_priority = priority_arg == "mixed";
  scnn::serve::Priority fixed_priority = scnn::serve::Priority::kNormal;
  if (!mixed_priority) {
    try {
      fixed_priority = scnn::serve::priority_from_string(priority_arg);
    } catch (const std::invalid_argument& e) {
      throw scnn::cli::ArgError(std::string("--") + e.what() + " or mixed");
    }
  }
  const int requests = args.get_int("requests", 200);
  const int concurrency = args.get_int("concurrency", 8);
  if (requests < 1 || concurrency < 1)
    throw scnn::cli::ArgError("--requests and --concurrency must be >= 1");

  // One checkpoint feeds every shard; quick-train it if missing. Under
  // --tenants, a tenant may name its own checkpoint — tenants that leave
  // `checkpoint` empty share the base one.
  const bool need_base_ckpt =
      tenants_file.empty() ||
      std::any_of(opts.tenants.begin(), opts.tenants.end(),
                  [](const scnn::serve::TenantOptions& t) {
                    return t.checkpoint.empty();
                  });
  scnn::nn::Network net = make_net(task);
  std::vector<float> params;
  if (need_base_ckpt) {
    if (scnn::nn::checkpoint_exists(ckpt)) {
      scnn::nn::load_checkpoint(net, ckpt);
    } else {
      std::printf("no checkpoint at %s — training a quick model first\n", ckpt.c_str());
      train_into(net, task, 4, ckpt);
    }
    params = net.save_parameters();
  }
  const Dataset calib = make_data(task, 64, 3);
  const Dataset test = make_data(task, args.get_int("count", 300), 2);

  std::unique_ptr<scnn::serve::Server> srv;
  if (tenants_file.empty()) {
    srv = std::make_unique<scnn::serve::Server>(
        [&task] { return make_net(task); }, opts, params, &calib.images);
  } else {
    std::vector<scnn::serve::TenantInit> inits;
    inits.reserve(opts.tenants.size());
    for (const scnn::serve::TenantOptions& topt : opts.tenants) {
      scnn::serve::TenantInit init;
      init.options = topt;
      init.factory = [&task] { return make_net(task); };
      init.calibration = calib.images;
      if (topt.checkpoint.empty()) {
        init.params = params;
      } else {
        if (!scnn::nn::checkpoint_exists(topt.checkpoint))
          throw scnn::cli::ArgError("--tenants: tenant \"" + topt.name +
                                    "\": no checkpoint at " + topt.checkpoint);
        scnn::nn::Network tenant_net = make_net(task);
        scnn::nn::load_checkpoint(tenant_net, topt.checkpoint);
        init.params = tenant_net.save_parameters();
      }
      inits.push_back(std::move(init));
    }
    srv = std::make_unique<scnn::serve::Server>(std::move(inits), opts);
  }
  scnn::serve::Server& server = *srv;
  if (tenants_file.empty()) {
    std::printf("serving %s (backend %s): %d workers x %s session threads, "
                "max_batch %d, max_delay %d us, queue cap %d (%s), priority %s\n",
                to_string(cfg.kind).c_str(),
                scnn::nn::resolved_backend(cfg.backend).backend.c_str(),
                server.workers(),
                opts.session_threads == 0
                    ? "auto"
                    : std::to_string(opts.session_threads).c_str(),
                opts.max_batch, opts.max_delay_us, opts.queue_capacity,
                to_string(opts.queue_kind).c_str(), priority_arg.c_str());
  } else {
    std::printf("serving %d tenants from %s: %d workers, max_batch %d, "
                "queue cap %d (%s), priority %s\n",
                server.registry().count(), tenants_file.c_str(),
                server.workers(), opts.max_batch, opts.queue_capacity,
                to_string(opts.queue_kind).c_str(), priority_arg.c_str());
    for (int i = 0; i < server.registry().count(); ++i) {
      const scnn::serve::TenantOptions& topt = server.registry().options(i);
      std::printf("  tenant %-12s engine %-8s shards %d%s%s\n",
                  topt.name.c_str(),
                  topt.engine ? to_string(topt.engine->kind).c_str() : "default",
                  server.registry().shard_count(i),
                  topt.checkpoint.empty() ? "" : " ckpt ",
                  topt.checkpoint.c_str());
    }
  }
  // Requests rotate round-robin over the tenant table (a single-model server
  // has exactly one entry), so every tenant sees load in a fixed pattern.
  std::vector<std::string> tenant_names;
  for (int i = 0; i < server.registry().count(); ++i)
    tenant_names.push_back(server.registry().options(i).name);

  // Soak-run time series: one flattened registry snapshot per interval,
  // appended as JSON lines while the load runs.
  std::unique_ptr<scnn::obs::SnapshotLogger> snapshot_log;
  const int interval_ms = args.get_int("metrics-interval-ms", 0);
  if (interval_ms < 0)
    throw std::invalid_argument("--metrics-interval-ms must be >= 0, got " +
                                std::to_string(interval_ms));
  if (interval_ms > 0) {
    const std::string metrics_out = args.get("metrics-out", "");
    const std::string series_path =
        metrics_out.empty() ? "scnn_serve_metrics.jsonl" : metrics_out + ".jsonl";
    snapshot_log = std::make_unique<scnn::obs::SnapshotLogger>(server.metrics(),
                                                               series_path, interval_ms);
    if (snapshot_log->ok())
      std::printf("appending metrics snapshots to %s every %d ms\n",
                  series_path.c_str(), interval_ms);
  }

  std::atomic<int> next{0};
  std::mutex mu;
  std::vector<double> latencies;
  int ok = 0, rejected = 0, timed_out = 0, shed = 0, errors = 0, correct = 0;
  const auto priority_of = [&](int id) {
    if (!mixed_priority) return fixed_priority;
    switch (id % 4) {
      case 0: return scnn::serve::Priority::kHigh;
      case 3: return scnn::serve::Priority::kBatch;
      default: return scnn::serve::Priority::kNormal;
    }
  };
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&] {
      std::vector<double> lat;
      int l_ok = 0, l_rej = 0, l_to = 0, l_shed = 0, l_err = 0, l_correct = 0;
      for (;;) {
        const int id = next.fetch_add(1);
        if (id >= requests) break;
        const int img = id % test.images.n();
        scnn::serve::Response r =
            server.submit({.tenant = tenant_names[static_cast<std::size_t>(id) %
                                                  tenant_names.size()],
                           .input = scnn::nn::batch_slice(test.images, img, 1),
                           .priority = priority_of(id)})
                .get();
        switch (r.status) {
          case scnn::serve::Status::kOk:
            ++l_ok;
            lat.push_back(r.total_us);
            if (r.predicted == test.labels[static_cast<std::size_t>(img)]) ++l_correct;
            break;
          case scnn::serve::Status::kQueueFull: ++l_rej; break;
          case scnn::serve::Status::kTimedOut: ++l_to; break;
          case scnn::serve::Status::kShed: ++l_shed; break;
          default: ++l_err; break;
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      ok += l_ok;
      rejected += l_rej;
      timed_out += l_to;
      shed += l_shed;
      errors += l_err;
      correct += l_correct;
      latencies.insert(latencies.end(), lat.begin(), lat.end());
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.drain();
  if (snapshot_log) snapshot_log->stop();  // final line reflects the drained state

  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&latencies](double p) {
    if (latencies.empty()) return 0.0;
    return latencies[static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1))];
  };
  const auto batch_hist =
      server.metrics().latency_histogram("serve.batch_size").snapshot();
  using scnn::common::Table;
  Table t({"requests", "ok", "rejected", "timed-out", "shed", "errors", "req/s",
           "mean batch", "p50 us", "p95 us", "max us"});
  t.add_row({std::to_string(requests), std::to_string(ok), std::to_string(rejected),
             std::to_string(timed_out), std::to_string(shed), std::to_string(errors),
             Table::fmt(wall_s > 0 ? ok / wall_s : 0.0, 1),
             Table::fmt(batch_hist.mean(), 2), Table::fmt(pct(0.50), 0),
             Table::fmt(pct(0.95), 0),
             Table::fmt(latencies.empty() ? 0.0 : latencies.back(), 0)});
  t.print(std::cout);

  // Server-side quantiles (the registry's log-linear histograms, <= 3.125%
  // relative error) — these are what BENCH_serve.json and bench_compare see.
  const auto lat_hist = server.metrics().latency_histogram("serve.latency_us").snapshot();
  const auto q_hist = server.metrics().latency_histogram("serve.queue_us").snapshot();
  Table qt({"metric", "count", "mean", "p50", "p90", "p99", "p999", "max"});
  const auto quantile_row = [&qt](const char* name, const scnn::obs::LatencyHist& h) {
    qt.add_row({name, std::to_string(h.count), Table::fmt(h.mean(), 1),
                Table::fmt(h.quantile(0.50), 0), Table::fmt(h.quantile(0.90), 0),
                Table::fmt(h.quantile(0.99), 0), Table::fmt(h.quantile(0.999), 0),
                std::to_string(h.max)});
  };
  quantile_row("serve.latency_us", lat_hist);
  quantile_row("serve.queue_us", q_hist);
  quantile_row("serve.batch_size", batch_hist);
  qt.print(std::cout);
  if (ok > 0)
    std::printf("served accuracy: %.3f (over ok responses)\n",
                static_cast<double>(correct) / ok);

  if (!trace_path.empty()) {
    if (!server.tracer().write_trace_event_json(trace_path, "scnn_serve")) return 1;
    std::printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  if (const std::string flight_path = args.get("dump-flight", ""); !flight_path.empty()) {
    if (server.dump_flight(flight_path, "scnn_cli serve --dump-flight").empty())
      return 1;
    // The dump must round-trip through the project's own JSON parser — a
    // dump nobody can read back is not forensics.
    std::ifstream in(flight_path);
    std::stringstream buf;
    buf << in.rdbuf();
    const auto doc = scnn::obs::json::parse(buf.str());
    const scnn::obs::json::Value* events = doc ? doc->find("events") : nullptr;
    if (!doc || !doc->is_object() || !events || !events->is_array()) {
      std::fprintf(stderr, "FAIL: flight dump %s does not parse as a stamped "
                   "event document\n", flight_path.c_str());
      return 1;
    }
    std::printf("flight dump %s: %zu events, parsed ok\n", flight_path.c_str(),
                events->array.size());
  }

  const std::string metrics_path = args.get("metrics-out", "");
  if (!metrics_path.empty()) {
    scnn::obs::JsonReport report = scnn::obs::stamped_report("scnn_cli_serve");
    report.set_meta("command", "serve");
    report.set_meta("task", task);
    scnn::nn::stamp_engine_meta(report, cfg);
    report.set_meta("workers", static_cast<double>(server.workers()));
    report.set_meta("max_batch", static_cast<double>(opts.max_batch));
    report.set_meta("queue_kind", to_string(opts.queue_kind));
    report.set_meta("priority", priority_arg);
    report.add_metric("throughput_rps", wall_s > 0 ? ok / wall_s : 0.0, "req/s");
    report.add_metric("latency_p50_us", pct(0.50), "us");
    report.add_metric("latency_p95_us", pct(0.95), "us");
    scnn::obs::append_registry(server.metrics(), report);
    report.write_file(metrics_path);
  }
  if (ok + rejected + timed_out + shed != requests || errors != 0) {
    std::fprintf(stderr, "FAIL: %d requests unaccounted for or errored "
                 "(ok %d, rejected %d, timed-out %d, shed %d, errors %d)\n",
                 requests, ok, rejected, timed_out, shed, errors);
    return 1;
  }
  return 0;
}

/// Offline autotuner: measure forward-pass throughput over the
/// (kernel x im2col-tile x threads) grid and write the winner to tune.json.
/// Kernels are forced through the SCNN_BACKEND env — the exact channel a
/// tune file steers later, so what tune measured is what kAuto will run.
/// Pure scheduling axes only: every grid point computes bit-identical
/// logits, so picking the fastest cannot change results.
int cmd_tune(const Args& args) {
  args.require_known({"task", "ckpt", "bits", "accum", "out", "count", "reps",
                      "quick", "metrics-out"});
  const std::string task = parse_task(args, 0);
  const std::string ckpt = args.get("ckpt", args.positional(1, kDefaultCkpt));
  const bool quick = args.has("quick");
  const std::string out = args.get("out", "tune.json");
  const int count = args.get_int("count", quick ? 16 : 64);
  const int reps = args.get_int("reps", quick ? 1 : 3);
  const int n_bits = args.get_int("bits", 8);
  const int accum = args.get_int("accum", 2);

  // The grid. Kernels: every mac_rows kernel runnable here (quick: scalar +
  // the widest). Tiles: 0 = full row plus cache-sized blocks. Threads: 1
  // plus all hardware threads where that differs.
  std::vector<const scnn::nn::backends::Kernel*> kernels;
  if (quick) {
    kernels.push_back(&scnn::nn::backends::scalar_kernel());
    if (const auto* best = scnn::nn::backends::best_simd_kernel())
      kernels.push_back(best);
  } else {
    kernels = scnn::nn::backends::available_kernels();
  }
  std::vector<int> tiles = quick ? std::vector<int>{0, 16}
                                 : std::vector<int>{0, 8, 16, 32, 64};
  std::vector<int> threads{1};
  if (const int hw = EngineConfig{.threads = 0}.resolved_threads(); hw > 1 && !quick)
    threads.push_back(hw);

  Dataset test;
  InferenceSession session = load_session(task, ckpt, 1, test, count);

  // Forcing goes through the env kAuto channel; remember and restore
  // whatever the caller had exported.
  const char* prev_env = std::getenv("SCNN_BACKEND");
  const std::string saved = prev_env ? prev_env : "";

  scnn::nn::TuneFile tune;
  tune.cpu_signature = scnn::common::cpu_features_summary();
  tune.git_sha = scnn::obs::git_sha();
  double best = -1.0;
  std::printf("%-8s %-6s %-8s %-12s\n", "kernel", "tile", "threads", "imgs/s");
  for (const auto* k : kernels) {
    if (setenv("SCNN_BACKEND", k->name, 1) != 0)
      throw std::runtime_error("setenv(SCNN_BACKEND) failed");
    for (const int tile : tiles) {
      for (const int t : threads) {
        session.set_engine({.kind = EngineKind::kProposed, .n_bits = n_bits,
                            .accum_bits = accum, .threads = t,
                            .backend = scnn::nn::MacBackend::kAuto,
                            .im2col_tile = tile});
        (void)session.forward(test.images);  // warm caches and the pool
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r) (void)session.forward(test.images);
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        const double imgs_per_s =
            secs > 0 ? static_cast<double>(count) * reps / secs : 0.0;
        tune.entries.push_back({k->name, tile, t, imgs_per_s});
        std::printf("%-8s %-6d %-8d %-12.1f\n", k->name, tile, t, imgs_per_s);
        if (imgs_per_s > best) {
          best = imgs_per_s;
          tune.best_backend = k->name;
          tune.best_tile = tile;
          tune.best_threads = t;
        }
      }
    }
  }
  if (saved.empty())
    unsetenv("SCNN_BACKEND");
  else
    setenv("SCNN_BACKEND", saved.c_str(), 1);

  scnn::nn::save_tune_file(tune, out);
  std::printf("winner: backend=%s tile=%d threads=%d (%.1f imgs/s)\n",
              tune.best_backend.c_str(), tune.best_tile, tune.best_threads, best);
  std::printf("tune written to %s — install with --tune-file=%s or "
              "SCNN_TUNE_FILE=%s\n", out.c_str(), out.c_str(), out.c_str());
  write_metrics_out(args, "tune", &session);
  return 0;
}

int cmd_info() {
  std::printf("scnn — BISC-MVM stochastic-computing CNN library (DAC'17 reproduction)\n");
  std::printf("engines: fixed, sc-lfsr, proposed; precisions N = %d..%d, A >= 0\n",
              EngineConfig::kMinBits, EngineConfig::kMaxBits);
  std::printf("runtime: --threads=T shards inference over T workers "
              "(0 = all %d hardware threads); logits are bit-identical at any T\n",
              EngineConfig{.threads = 0}.resolved_threads());
  std::printf("cpu features: %s\n", scnn::common::cpu_features_summary().c_str());
  std::string kernels;
  for (const auto* k : scnn::nn::backends::available_kernels())
    kernels += std::string(kernels.empty() ? "" : ", ") + k->name + " (" +
               std::to_string(k->lanes) + " lanes)";
  std::printf("mac_rows kernels: %s; auto resolves to %s "
              "(--backend or SCNN_BACKEND overrides)\n", kernels.c_str(),
              scnn::nn::resolved_backend(scnn::nn::MacBackend::kAuto).backend.c_str());
  // The full inventory, including what this build knows about but cannot
  // run here — detected-but-uncompiled and compiled-but-unsupported ISA
  // levels are the difference between "slow by design" and "slow by build".
  for (const auto& s : scnn::nn::backends::kernel_support()) {
    if (s.compiled && s.supported) continue;
    const char* why = s.compiled    ? "compiled, but this CPU lacks the ISA"
                      : s.supported ? "CPU capable, but not compiled into "
                                      "this binary"
                                    : "not available for this CPU/arch";
    std::printf("  %-14s unavailable: %s\n", s.name, why);
  }
  std::printf("popcount datapath (--backend=popcount, proposed engine only): %s\n",
              scnn::nn::popcount_backend_lanes() > 1
                  ? "vpopcntdq SIMD, 8 lanes"
                  : "scalar __builtin_popcountll");
  if (const scnn::nn::TuneFile* tune = scnn::nn::active_tune())
    std::printf("tune file installed: backend=%s tile=%d threads=%d\n",
                tune->best_backend.empty() ? "auto" : tune->best_backend.c_str(),
                tune->best_tile, tune->best_threads);
  else
    std::printf("no tune file installed — run `scnn_cli tune` and export "
                "SCNN_TUNE_FILE=tune.json to steer auto dispatch\n");
  std::printf("sparsity modes: dense, zero-skip, auto — zero-skip drops k=0 weight\n"
              "  codes from the schedule, bit-identical to dense (--sparsity or\n"
              "  SCNN_SPARSITY overrides auto; needs a zero-annihilating table)\n");
  const char* env = std::getenv("SCNN_DATA_DIR");
  std::printf("data dir: %s (real MNIST/CIFAR-10 picked up when present)\n",
              env ? env : "data");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Args::parse(argc, argv);
    const std::string& cmd = args.command();
    if (cmd.empty()) return usage();
    if (cmd == "info") return cmd_info();
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "tune") return cmd_tune(args);
    std::fprintf(stderr, "error: unknown command '%s'\n\n", cmd.c_str());
    return usage();
  } catch (const scnn::cli::ArgError& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
